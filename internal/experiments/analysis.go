package experiments

import (
	"fmt"

	"moe/internal/core"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

// Affinity reproduces Fig 14b (§7.6): every policy with and without
// affinity scheduling, in the small-workload low-frequency setting ("the
// scenario likely to benefit most from thread scheduling"), averaged over
// targets.
func (l *Lab) Affinity(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 14b — affinity scheduling impact (small workload, low frequency)",
		Columns: []string{"no-affinity", "affinity", "gain"},
	}
	sets := workload.Sets(workload.Small)
	for _, name := range BaselinePolicies {
		name := name
		type offOn struct{ off, on float64 }
		cells, err := grid(l, len(sc.Targets)*len(sets), func(i int) (offOn, error) {
			si := i % len(sets)
			spec := ScenarioSpec{
				Target:   sc.Targets[i/len(sets)],
				Workload: sets[si].Programs,
				HWFreq:   trace.LowFrequency,
				Seed:     sc.Seed + uint64(si)*7907,
			}
			sp, _, err := l.scenarioSpeedups(spec, []PolicyName{name}, sc.Repeats)
			if err != nil {
				return offOn{}, err
			}
			spec.Affinity = true
			spA, _, err := l.scenarioSpeedups(spec, []PolicyName{name}, sc.Repeats)
			if err != nil {
				return offOn{}, err
			}
			return offOn{sp[name], spA[name]}, nil
		})
		if err != nil {
			return nil, err
		}
		var off, on []float64
		for _, c := range cells {
			off = append(off, c.off)
			on = append(on, c.on)
		}
		o, a := stats.HMean(off), stats.HMean(on)
		t.AddRow(string(name), o, a, a/o)
	}
	t.Notes = append(t.Notes,
		"speedups are over the default policy *without* affinity in the same scenario",
	)
	return t, nil
}

// MonolithicVsMixture reproduces Fig 14c (§7.7): a single aggregate model
// trained on the same total data versus the four-expert mixture, averaged
// over the dynamic scenarios.
func (l *Lab) MonolithicVsMixture(sc Scale) (*Table, error) {
	names := []PolicyName{PolicyMonolithic, PolicyMixture}
	t := &Table{
		Title:   "Fig 14c — monolithic model vs mixture of experts (speedup over default)",
		Columns: policyColumns(names),
	}
	nt := len(sc.Targets)
	cells, err := grid(l, len(scenarioKinds)*nt, func(i int) (map[PolicyName]float64, error) {
		kind := scenarioKinds[i/nt]
		sp, _, err := l.targetScenarioSpeedups(sc.Targets[i%nt], kind.Size, kind.Freq, names, sc)
		return sp, err
	})
	if err != nil {
		return nil, err
	}
	per := make(map[PolicyName][]float64)
	for _, sp := range cells {
		for _, n := range names {
			per[n] = append(per[n], sp[n])
		}
	}
	vals := make([]float64, len(names))
	for i, n := range names {
		vals[i] = stats.HMean(per[n])
	}
	t.AddRow("hmean", vals...)
	return t, nil
}

// mixtureStats runs the mixture in every dynamic scenario and accumulates
// its Snapshot statistics; shared by the Fig 15 and Fig 17 experiments.
func (l *Lab) mixtureStats(sc Scale) (map[string][]core.Stats, error) {
	// Flatten the kind × target × set grid into one job list (set counts
	// differ per kind), fan it out, then regroup by kind in job order.
	type statJob struct {
		kindLabel string
		spec      ScenarioSpec
	}
	var statJobs []statJob
	for _, kind := range scenarioKinds {
		for _, target := range sc.Targets {
			for si, set := range workload.Sets(kind.Size) {
				statJobs = append(statJobs, statJob{kind.Label, ScenarioSpec{
					Target:   target,
					Workload: set.Programs,
					HWFreq:   kind.Freq,
					Seed:     sc.Seed + uint64(si)*7907,
				}})
			}
		}
	}
	snaps, err := grid(l, len(statJobs), func(i int) (core.Stats, error) {
		run, err := l.Run(statJobs[i].spec, PolicyMixture)
		if err != nil {
			return core.Stats{}, err
		}
		mix, ok := run.Policy.(*core.Mixture)
		if !ok {
			return core.Stats{}, fmt.Errorf("experiments: mixture policy has unexpected type %T", run.Policy)
		}
		return mix.Snapshot(), nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]core.Stats)
	for i, j := range statJobs {
		out[j.kindLabel] = append(out[j.kindLabel], snaps[i])
	}
	return out, nil
}

// EnvAccuracy reproduces Fig 15a: the environment-prediction accuracy of
// each expert (normalized difference between observed and predicted
// environment within tolerance) and of the mixture's chosen expert,
// averaged across all dynamic scenarios.
func (l *Lab) EnvAccuracy(sc Scale) (*Table, error) {
	statsByKind, err := l.mixtureStats(sc)
	if err != nil {
		return nil, err
	}
	var expertAcc [4][]float64
	var mixAcc []float64
	// Walk kinds in declaration order — ranging over the map would feed
	// the float means in a different order every process run.
	for _, kind := range scenarioKinds {
		for _, s := range statsByKind[kind.Label] {
			for k := 0; k < len(s.EnvAccuracy) && k < 4; k++ {
				expertAcc[k] = append(expertAcc[k], s.EnvAccuracy[k])
			}
			mixAcc = append(mixAcc, s.MixtureEnvAccuracy)
		}
	}
	t := &Table{
		Title:   "Fig 15a — environment predictor accuracy",
		Columns: []string{"accuracy"},
	}
	for k := 0; k < 4; k++ {
		t.AddRow(fmt.Sprintf("E%d", k+1), stats.Mean(expertAcc[k]))
	}
	t.AddRow("mixture", stats.Mean(mixAcc))
	return t, nil
}

// SelectionFrequency reproduces Fig 15b: how often each expert is selected
// in each dynamic scenario.
func (l *Lab) SelectionFrequency(sc Scale) (*Table, error) {
	statsByKind, err := l.mixtureStats(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 15b — expert selection frequency per scenario",
		Columns: []string{"E1", "E2", "E3", "E4"},
	}
	for _, kind := range scenarioKinds {
		var frac [4][]float64
		for _, s := range statsByKind[kind.Label] {
			for k := 0; k < len(s.SelectionFraction) && k < 4; k++ {
				frac[k] = append(frac[k], s.SelectionFraction[k])
			}
		}
		t.AddRow(kind.Label,
			stats.Mean(frac[0]), stats.Mean(frac[1]), stats.Mean(frac[2]), stats.Mean(frac[3]))
	}
	return t, nil
}

// NumExperts reproduces Fig 15c (§8.3): target speedup with each individual
// expert and with mixtures of growing size, in the large-workload
// low-frequency scenario.
func (l *Lab) NumExperts(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 15c — effect of the number of experts (large workload, low frequency)",
		Columns: []string{"speedup"},
	}
	sets := workload.Sets(workload.Large)
	sweep := func(build func(target string) (sim.Policy, error)) (float64, error) {
		sp, err := grid(l, len(sc.Targets)*len(sets), func(i int) (float64, error) {
			target, si := sc.Targets[i/len(sets)], i%len(sets)
			return l.comparativeRun(target, sets[si].Programs, trace.LowFrequency, sc, uint64(si),
				func(uint64) (sim.Policy, error) { return build(target) })
		})
		if err != nil {
			return 0, err
		}
		return stats.HMean(sp), nil
	}

	// Individual experts.
	for k := 0; k < 4; k++ {
		k := k
		hm, err := sweep(func(target string) (sim.Policy, error) { return l.SingleExpertPolicy(target, k) })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("E%d alone", k+1), hm)
	}
	// Growing mixtures.
	for k := 2; k <= 4; k++ {
		k := k
		hm, err := sweep(func(target string) (sim.Policy, error) { return l.SubsetMixturePolicy(target, k) })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("mixture of %d", k), hm)
	}
	return t, nil
}

// Granularity reproduces Fig 16 (§8.4): monolithic vs 4 experts vs 8
// experts in the small-workload low-frequency scenario.
func (l *Lab) Granularity(sc Scale) (*Table, error) {
	names := []PolicyName{PolicyMonolithic, PolicyMixture, PolicyMixture8}
	t := &Table{
		Title:   "Fig 16 — expert granularity (small workload, low frequency)",
		Columns: []string{"speedup"},
	}
	labels := map[PolicyName]string{
		PolicyMonolithic: "monolithic",
		PolicyMixture:    "4 experts",
		PolicyMixture8:   "8 experts",
	}
	for _, name := range names {
		name := name
		sp, err := grid(l, len(sc.Targets), func(i int) (float64, error) {
			v, _, err := l.targetScenarioSpeedups(sc.Targets[i], workload.Small, trace.LowFrequency, []PolicyName{name}, sc)
			if err != nil {
				return 0, err
			}
			return v[name], nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(labels[name], stats.HMean(sp))
	}
	return t, nil
}

// ThreadDistribution reproduces Fig 17: the distribution of thread numbers
// chosen by each individual expert and by the mixture, pooled over the
// dynamic scenarios. Reported as the share of decisions in thread-count
// quartile bands of the 32-core machine.
func (l *Lab) ThreadDistribution(sc Scale) (*Table, error) {
	bands := []struct {
		label  string
		lo, hi int
	}{
		{"1-8", 1, 8},
		{"9-16", 9, 16},
		{"17-24", 17, 24},
		{"25-32", 25, 32},
	}
	cols := make([]string, len(bands))
	for i, b := range bands {
		cols[i] = b.label
	}
	t := &Table{Title: "Fig 17 — thread number distribution", Columns: cols}

	sets := workload.Sets(workload.Small)
	collect := func(build func(target string) (*core.Mixture, error)) (*stats.Histogram, error) {
		histos, err := grid(l, len(sc.Targets)*len(sets), func(i int) (map[int]float64, error) {
			si := i % len(sets)
			spec := ScenarioSpec{
				Target:   sc.Targets[i/len(sets)],
				Workload: sets[si].Programs,
				HWFreq:   trace.LowFrequency,
				Seed:     sc.Seed + uint64(si)*7907,
			}
			pol, err := build(spec.Target)
			if err != nil {
				return nil, err
			}
			run, err := l.RunWithPolicy(spec, pol)
			if err != nil {
				return nil, err
			}
			mix := run.Policy.(*core.Mixture)
			return mix.Snapshot().ThreadHistogram, nil
		})
		if err != nil {
			return nil, err
		}
		hist := stats.NewHistogram()
		for _, h := range histos {
			for bin, frac := range h {
				hist.AddN(bin, int(frac*1000))
			}
		}
		return hist, nil
	}

	addRow := func(label string, hist *stats.Histogram) {
		vals := make([]float64, len(bands))
		for i, b := range bands {
			count := 0
			for bin := b.lo; bin <= b.hi; bin++ {
				count += hist.Count(bin)
			}
			if hist.Total() > 0 {
				vals[i] = float64(count) / float64(hist.Total())
			}
		}
		t.AddRow(label, vals...)
	}

	for k := 0; k < 4; k++ {
		kk := k
		hist, err := collect(func(target string) (*core.Mixture, error) {
			p, err := l.SingleExpertPolicy(target, kk)
			if err != nil {
				return nil, err
			}
			return p.(*core.Mixture), nil
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("E%d", k+1), hist)
	}
	hist, err := collect(func(target string) (*core.Mixture, error) {
		m, err := l.models(target)
		if err != nil {
			return nil, err
		}
		return training.NewMixtureFromPrior(m.prior4, m.set4)
	})
	if err != nil {
		return nil, err
	}
	addRow("mixture", hist)
	return t, nil
}

// comparativeRun measures exec-time speedup of a custom-built policy over
// the default in one scenario configuration, averaged over repeats.
func (l *Lab) comparativeRun(target string, wl []string, freq trace.Frequency, sc Scale, salt uint64,
	build func(seed uint64) (sim.Policy, error)) (float64, error) {
	repeats := max(1, sc.Repeats)
	times, err := grid(l, repeats*2, func(i int) (float64, error) {
		seed := sc.Seed + salt*7907 + uint64(i/2)*1000003
		spec := ScenarioSpec{Target: target, Workload: wl, HWFreq: freq, Seed: seed}
		if i%2 == 0 {
			b, err := l.Run(spec, PolicyDefault)
			if err != nil {
				return 0, err
			}
			return b.ExecTime, nil
		}
		p, err := build(seed)
		if err != nil {
			return 0, err
		}
		out, err := l.RunWithPolicy(spec, p)
		if err != nil {
			return 0, err
		}
		return out.ExecTime, nil
	})
	if err != nil {
		return 0, err
	}
	var base, pol float64
	for r := 0; r < repeats; r++ {
		base += times[r*2]
		pol += times[r*2+1]
	}
	return base / pol, nil
}
