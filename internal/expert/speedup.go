package expert

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/regress"
)

// SpeedupModel is the paper's model x(n, f) (§4.1): given a candidate
// thread number n and the current state f it approximates the speedup the
// region would achieve. The thread predictor is then
// w(f) = argmax_n x(n, f), evaluated by enumerating candidate thread
// counts.
//
// x is linear over an engineered basis that includes n, n² and the
// interactions of n with the environment features that determine how many
// threads are worth running (available processors, external load). The
// interactions are what let the argmax shift with the environment even far
// outside the training range: a direct n = w·f predictor must extrapolate
// the optimum itself, while x only has to keep its curvature pointed the
// right way.
type SpeedupModel struct {
	Model *regress.Model
}

// speedupBasisDim is the engineered-basis width: the 10 raw features plus
// n, n², and n interacted with the features that determine how many threads
// pay off — external load, processors, run queue, load average, and the
// memory-boundedness of the loop's code.
const speedupBasisDim = features.Dim + 8

// PredictScratchLen is the scratch length PredictThreadsBuf and
// PredictEnvBuf accept: wide enough for the speedup basis, the widest
// regression input any expert evaluates.
const PredictScratchLen = speedupBasisDim

// SpeedupBasis expands (f, n) into the regression basis for x.
func SpeedupBasis(f features.Vector, n int) []float64 {
	return SpeedupBasisInto(make([]float64, speedupBasisDim), f, n)
}

// SpeedupBasisInto writes the regression basis for (f, n) into x — which
// must have length ≥ speedupBasisDim — and returns x[:speedupBasisDim].
func SpeedupBasisInto(x []float64, f features.Vector, n int) []float64 {
	x = x[:speedupBasisDim]
	copy(x, f[:])
	nf := float64(n)
	x[features.Dim+0] = nf
	x[features.Dim+1] = nf * nf
	x[features.Dim+2] = nf * f[features.WorkloadThreads]
	x[features.Dim+3] = nf * f[features.Processors]
	x[features.Dim+4] = nf * f[features.RunQueueSize]
	x[features.Dim+5] = nf * f[features.CPULoad5]
	x[features.Dim+6] = nf * f[features.LoadStoreCount]
	x[features.Dim+7] = nf * nf * f[features.WorkloadThreads]
	return x
}

// Predict returns x(n, f), the approximated speedup of running with n
// threads in state f.
func (s *SpeedupModel) Predict(f features.Vector, n int) float64 {
	return s.Model.MustPredict(SpeedupBasis(f, n))
}

// Best returns argmax_n x(n, f) over 1..maxN and the predicted speedup
// there — the thread predictor w of §4.1.
func (s *SpeedupModel) Best(f features.Vector, maxN int) (int, float64) {
	return s.bestWith(f, maxN, nil)
}

// bestWith is Best with caller scratch (len ≥ speedupBasisDim; nil
// allocates per candidate exactly as Best always did).
func (s *SpeedupModel) bestWith(f features.Vector, maxN int, buf []float64) (int, float64) {
	if maxN < 1 {
		maxN = 1
	}
	bestN, bestV := 1, math.Inf(-1)
	for n := 1; n <= maxN; n++ {
		var v float64
		if buf != nil {
			v = s.Model.MustPredict(SpeedupBasisInto(buf, f, n))
		} else {
			v = s.Predict(f, n)
		}
		if v > bestV {
			bestN, bestV = n, v
		}
	}
	return bestN, bestV
}

// Validate checks the model shape.
func (s *SpeedupModel) Validate() error {
	if s == nil || s.Model == nil {
		return fmt.Errorf("expert: nil speedup model")
	}
	if s.Model.Dim() != speedupBasisDim {
		return fmt.Errorf("expert: speedup model has %d basis features, want %d", s.Model.Dim(), speedupBasisDim)
	}
	return nil
}
