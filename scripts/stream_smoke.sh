#!/usr/bin/env bash
# stream_smoke.sh — two-process smoke of the wire streaming transport: a
# real moed with -stream-addr serves 10k decisions across 8 pipelined
# tenant sessions (checkpoint-sync + group commit on), takes a SIGTERM
# mid-fleet idle and must drain clean (exit 0), then a restart on the same
# checkpoint directory must resume every tenant's decision counter exactly
# where the acked stream left off.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
MOED_PID=""
cleanup() {
    [ -n "$MOED_PID" ] && kill -9 "$MOED_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

ADDR=127.0.0.1:9187
STREAM=127.0.0.1:9188
CKPT="$WORK/ckpt"
TENANTS=8
DECISIONS=10000
# driveStream serves DECISIONS/(TENANTS*4) frames of 4 observations per
# tenant; this is the per-tenant count the restart must resume from.
PER_TENANT=$(( DECISIONS / (TENANTS * 4) * 4 ))

go build -o "$WORK/moed" ./cmd/moed
go build -o "$WORK/moebench" ./cmd/moebench

start_moed() {
    "$WORK/moed" -listen "$ADDR" -stream-addr "$STREAM" \
        -checkpoint-dir "$CKPT" -checkpoint-sync -group-commit-window 1ms \
        -max-inflight 4096 -drain-window 15s &
    MOED_PID=$!
    for _ in $(seq 1 100); do
        curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "stream-smoke: moed never came up" >&2
    exit 1
}

check_acked() { # check_acked <json> <want-per-tenant-delta>
    python3 - "$1" "$2" "$TENANTS" <<'PY'
import json, sys
rep = json.loads(sys.argv[1])
want, tenants = int(sys.argv[2]), int(sys.argv[3])
assert rep["errors"] == [], rep["errors"]
assert rep["decisions_acked"] == want * tenants, (rep["decisions_acked"], want * tenants)
print(f'stream-smoke: {rep["decisions_acked"]} decisions acked over {tenants} sessions '
      f'({rep["decisions_per_sec"]:.0f}/s)')
PY
}

echo "stream-smoke: phase 1 — $DECISIONS decisions over $TENANTS wire sessions"
start_moed
OUT=$("$WORK/moebench" -stream-drive "$STREAM" -stream-tenants "$TENANTS" -stream-decisions "$DECISIONS")
check_acked "$OUT" "$PER_TENANT"

echo "stream-smoke: phase 2 — SIGTERM, drain must be clean (exit 0)"
kill -TERM "$MOED_PID"
if ! wait "$MOED_PID"; then
    echo "stream-smoke: moed exited non-zero on SIGTERM drain" >&2
    exit 1
fi
MOED_PID=""

echo "stream-smoke: phase 3 — restart, counters must resume at $PER_TENANT/tenant"
start_moed
OUT=$("$WORK/moebench" -stream-drive "$STREAM" -stream-tenants "$TENANTS" \
    -stream-decisions $(( TENANTS * 4 * 8 )) -stream-base "$PER_TENANT")
check_acked "$OUT" 32

kill -TERM "$MOED_PID" && wait "$MOED_PID" || { echo "stream-smoke: final drain failed" >&2; exit 1; }
MOED_PID=""
echo "stream-smoke: OK"
