// Command moebench regenerates the paper's tables and figures on the
// simulator substrate.
//
// Usage:
//
//	moebench -experiment fig8            # one experiment
//	moebench -all                        # everything
//	moebench -all -full                  # full scale (all programs, 3 repeats)
//	moebench -chaos                      # fault-injection robustness study
//	moebench -experiment restart         # crash-recovery (warm vs cold) study
//	moebench -list                       # show available experiment ids
//
// Training runs once per invocation (deterministic, ~1–3 minutes at default
// scale) and is shared by all requested experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"moe/internal/experiments"
	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

type runner func(lab *experiments.Lab, sc experiments.Scale) (*experiments.Table, error)

var registry = map[string]runner{
	"table1": func(l *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		return l.CoefficientsTable()
	},
	"fig1": func(_ *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return experiments.LiveTraceSummary(sc.Seed)
	},
	"fig2": nil, // handled specially (timeline output)
	"fig3": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		_, t, err := l.Motivation(sc.Seed)
		return t, err
	},
	"fig6": func(l *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		return l.FeatureImpact()
	},
	"fig7": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Static(sc)
	},
	"fig8": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Summary(sc)
	},
	"fig9": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.DynamicScenario(workload.Small, trace.LowFrequency, sc)
	},
	"fig10": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.DynamicScenario(workload.Small, trace.HighFrequency, sc)
	},
	"fig11": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.DynamicScenario(workload.Large, trace.LowFrequency, sc)
	},
	"fig12": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.DynamicScenario(workload.Large, trace.HighFrequency, sc)
	},
	"fig13a": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.WorkloadImpact(sc)
	},
	"fig13b": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.AdaptivePairs(sc)
	},
	"fig14a": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.LiveStudy(sc)
	},
	"fig14b": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Affinity(sc)
	},
	"fig14c": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.MonolithicVsMixture(sc)
	},
	"fig15a": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.EnvAccuracy(sc)
	},
	"fig15b": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.SelectionFrequency(sc)
	},
	"fig15c": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.NumExperts(sc)
	},
	"fig16": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Granularity(sc)
	},
	"fig17": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.ThreadDistribution(sc)
	},
	"cv": func(l *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		return l.CrossValidation()
	},
	"ablation-gating": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.AblationGating(sc)
	},
	"ablation-features": func(l *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		return l.AblationFeatures()
	},
	"portability": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Portability(sc)
	},
	"churn": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.Churn(sc)
	},
	"chaos": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.ChaosStudy(sc)
	},
	"restart": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.RestartStudy(sc)
	},
	"telemetry": func(l *experiments.Lab, sc experiments.Scale) (*experiments.Table, error) {
		return l.TelemetryStudy(sc)
	},
	"throughput": func(_ *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		rep, err := runThroughput()
		if err != nil {
			return nil, err
		}
		return throughputTable(rep), nil
	},
	"serve": func(_ *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		rep, err := runServe(defaultServeOpts())
		if err != nil {
			return nil, err
		}
		return serveTable(rep), nil
	},
	"stream": func(_ *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		rep, err := runStream(defaultStreamOpts())
		if err != nil {
			return nil, err
		}
		return streamTable(rep), nil
	},
	"replica": func(_ *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		rep, err := runReplica(defaultReplicaOpts())
		if err != nil {
			return nil, err
		}
		return replicaTable(rep), nil
	},
	"evolve": func(_ *experiments.Lab, _ experiments.Scale) (*experiments.Table, error) {
		rep, err := experiments.RunEvolveStudy(experiments.DefaultEvolveOptions())
		if err != nil {
			return nil, err
		}
		return experiments.EvolveStudyTable(rep), nil
	},
}

// order fixes the -all presentation sequence.
var order = []string{
	"table1", "fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13a", "fig13b", "fig14a", "fig14b",
	"fig14c", "fig15a", "fig15b", "fig15c", "fig16", "fig17", "cv",
	"ablation-gating", "ablation-features", "portability", "churn",
	"chaos", "restart", "telemetry", "throughput", "serve", "stream",
	"replica", "evolve",
}

func main() {
	experiment := flag.String("experiment", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	full := flag.Bool("full", false, "full scale: all 16 programs, 3 repeats")
	list := flag.Bool("list", false, "list experiment ids")
	seed := flag.Uint64("seed", 42, "training/evaluation seed")
	chart := flag.Bool("chart", false, "render tables as bar charts")
	workers := flag.Int("workers", 0, "concurrent scenario evaluations (0 = GOMAXPROCS, 1 = serial); output is identical for every setting")
	chaosFlag := flag.Bool("chaos", false, "shorthand for -experiment chaos (fault-injection robustness study)")
	stepping := flag.String("stepping", "event", "simulation engine: event (event-horizon) or fixed (dt-by-dt reference); observables agree within 1e-9")
	benchJSON := flag.String("bench-json", "", "measure both engines on the canonical scenario, write the JSON report to this path, and exit")
	throughputJSON := flag.String("throughput-json", "", "measure decision throughput (single vs batched vs sharded), write the JSON report to this path, and exit")
	serveJSON := flag.String("serve-json", "", "run the multi-tenant daemon chaos-load study, write the JSON report to this path, and exit")
	streamJSON := flag.String("stream-json", "", "run the transport study (json vs ndjson vs wire, plus journal group commit), write the JSON report to this path, and exit")
	streamDrive := flag.String("stream-drive", "", "client mode: stream -stream-decisions across -stream-tenants wire sessions against this moed base URL, print a JSON summary, and exit")
	streamTenants := flag.Int("stream-tenants", 8, "tenant sessions for -stream-drive")
	streamDecisions := flag.Int("stream-decisions", 10000, "total decisions for -stream-drive")
	streamBase := flag.Int("stream-base", 0, "per-tenant decisions already served (resume check for -stream-drive; responses must count up from it)")
	replicaJSON := flag.String("replica-json", "", "run the hot-standby replication study (throughput on vs off, lag, failover), write the JSON report to this path, and exit")
	evolveJSON := flag.String("evolve-json", "", "run the living-vs-frozen pool drift study, write the JSON report to this path, and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	mode, err := sim.ParseSteppingMode(*stepping)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moebench: %v\n", err)
		os.Exit(2)
	}

	stopCPU := startCPUProfile(*cpuprofile)
	defer stopCPU()
	defer writeHeapProfile(*memprofile)

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: bench: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *throughputJSON != "" {
		if err := writeThroughputJSON(*throughputJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: throughput: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *serveJSON != "" {
		if err := writeServeJSON(*serveJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: serve: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *streamJSON != "" {
		if err := writeStreamJSON(*streamJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: stream: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *streamDrive != "" {
		if err := driveStream(*streamDrive, *streamTenants, *streamDecisions, *streamBase); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: stream-drive: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *replicaJSON != "" {
		if err := writeReplicaJSON(*replicaJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: replica: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	if *evolveJSON != "" {
		if err := writeEvolveJSON(*evolveJSON); err != nil {
			fmt.Fprintf(os.Stderr, "moebench: evolve: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
		return
	}

	// The throughput, serve, stream, and evolve studies need no trained lab;
	// serve them before the training step when one is the only request.
	if !*all && (*experiment == "throughput" || *experiment == "serve" || *experiment == "stream" || *experiment == "evolve") && !*list {
		t, err := registry[*experiment](nil, experiments.QuickScale())
		if err != nil {
			fmt.Fprintf(os.Stderr, "moebench: %s failed: %v\n", *experiment, err)
			stopCPU()
			os.Exit(1)
		}
		if *chart {
			fmt.Print(t.Chart())
		} else {
			fmt.Print(t.String())
		}
		return
	}

	if *chaosFlag && !*all {
		*experiment = "chaos"
	}

	if *list {
		ids := make([]string, 0, len(registry))
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if !*all && *experiment == "" {
		fmt.Fprintln(os.Stderr, "moebench: need -experiment <id> or -all (use -list for ids)")
		os.Exit(2)
	}
	if !*all {
		if _, ok := registry[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "moebench: unknown experiment %q (use -list)\n", *experiment)
			os.Exit(2)
		}
	}

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	sc.Seed = *seed

	fmt.Fprintf(os.Stderr, "moebench: training experts (seed %d)…\n", *seed)
	start := time.Now()
	lab, err := experiments.NewLab(training.Config{Seed: *seed, Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moebench: training failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "moebench: trained in %.1fs (%d samples)\n",
		time.Since(start).Seconds(), len(lab.DS.Samples))
	lab.Stepping = mode

	ids := []string{*experiment}
	if *all {
		ids = order
	}
	for _, id := range ids {
		start := time.Now()
		if id == "fig2" {
			points, _, err := lab.Motivation(sc.Seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "moebench: fig2 failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("== Fig 2 — motivation timeline (lu vs mg) ==")
			if *chart {
				fmt.Print(experiments.TimelineSparklines(points))
			} else {
				fmt.Print(experiments.FormatTimeline(points, 12))
			}
		} else {
			t, err := registry[id](lab, sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "moebench: %s failed: %v\n", id, err)
				os.Exit(1)
			}
			if *chart {
				fmt.Print(t.Chart())
			} else {
				fmt.Print(t.String())
			}
		}
		fmt.Fprintf(os.Stderr, "moebench: %s done in %.1fs\n", id, time.Since(start).Seconds())
		fmt.Println()
	}
}

// startCPUProfile begins CPU profiling when path is non-empty and returns
// the stop function (a no-op otherwise). Error exits skip the deferred
// stop, which only costs the profile itself.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moebench: cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "moebench: cpuprofile: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeHeapProfile snapshots the heap to path when non-empty, after a GC so
// the profile reflects live objects rather than garbage.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moebench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "moebench: memprofile: %v\n", err)
	}
}
