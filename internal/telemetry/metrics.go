// Package telemetry is the observability layer for the decision path: a
// dependency-free metrics registry (atomic counters, gauges, bounded
// histograms with quantile estimation), a structured per-decision trace
// record, and exposition in Prometheus text format, JSON, and NDJSON.
//
// The package deliberately imports nothing from the rest of the repository,
// so every layer — the public runtime, the mixture core, the checkpoint
// store, the chaos injector, the live-execution tuner — can report into it
// without import cycles. Instrumentation is nil-safe throughout: a nil
// *Registry hands out nil metrics, and every metric method on a nil
// receiver is a no-op, so uninstrumented hot paths pay a single pointer
// test and allocate nothing.
//
// Telemetry observes; it never steers. Nothing in this package feeds back
// into decisions, so attaching any combination of sinks to a run must leave
// its decision sequence byte-identical (pinned by the golden-trace tests).
package telemetry

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta; negative deltas are ignored (counters only go up).
func (c *Counter) Add(delta int64) {
	if c != nil && delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded histogram: a fixed set of bucket upper bounds
// chosen at creation, each backed by an atomic counter, plus a running sum
// and count. Memory is constant regardless of how many observations arrive,
// and quantiles are estimated by linear interpolation inside the bucket the
// quantile falls in — the same scheme Prometheus' histogram_quantile uses.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    Gauge
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns how many samples have been observed. The total is derived
// by summing the buckets — the observe path is one atomic add cheaper for
// it, and exposition (the only caller) is off the hot path.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (q in [0,1]) by interpolating within
// the bucket the quantile lands in. With no samples it returns 0; a
// quantile landing in the overflow bucket returns the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: the best bounded answer is the last
				// finite boundary.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns cumulative bucket counts aligned with bounds plus
// the +Inf bucket, for exposition.
func (h *Histogram) snapshotBuckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// multiplying by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs–10s in roughly ×2.5 steps, fitting both
// in-memory decisions (tens of µs) and fsync-bound checkpoint writes (ms).
func DefLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// metricKind discriminates registry families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family groups every labeled instance of one metric name for exposition.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics map[string]any // label string ("" for unlabeled) → metric
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use, and every method is nil-safe: a nil *Registry hands out
// nil metrics whose operations are no-ops, so instrumented code needs no
// "is telemetry on?" branches beyond holding a possibly-nil registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// seriesLimit caps how many label sets one family may register; 0 is
	// unlimited. dropped counts the label sets refused at the cap. Both are
	// set once by SetSeriesLimit before the registry is shared.
	seriesLimit int
	dropped     *Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetSeriesLimit caps the number of *labeled* series any one family will
// register; requests past the cap receive a detached metric — fully
// functional, never exposed — and increment the overflow counter registered
// under droppedCounter (e.g. "serve_labels_dropped_total"), once per refused
// request. Unlabeled series are exempt: the cap exists to bound label-value
// cardinality (tenant IDs are unbounded in a multi-tenant daemon), not to
// refuse a family its base series. A label set registered before the cap was
// reached keeps resolving to its live metric forever.
//
// Call before the registry is shared with instrumented code; the limit is
// read under the registry lock but is not meant to change mid-flight.
func (r *Registry) SetSeriesLimit(limit int, droppedCounter string) {
	if r == nil || limit < 1 {
		return
	}
	c := r.Counter(droppedCounter, "Labeled series refused by the registry's per-family cardinality cap.")
	r.mu.Lock()
	r.seriesLimit = limit
	r.dropped = c
	r.mu.Unlock()
}

// labelValueEscaper applies the Prometheus text-format escaping rules for
// label values: backslash, double quote, and newline.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders alternating key,value pairs as a deterministic
// Prometheus label set; an odd trailing key is dropped. Values are escaped
// per the text exposition format, so a value containing '"' or '\n' cannot
// corrupt a scrape.
func labelString(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	s := "{"
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			s += ","
		}
		s += labels[i] + `="` + labelValueEscaper.Replace(labels[i+1]) + `"`
	}
	return s + "}"
}

// metric returns (creating if needed) the metric for name+labels. A name
// already registered under a different kind yields a detached metric that
// works but is not exposed, rather than panicking in a hot path.
func (r *Registry) metric(name, help string, kind metricKind, build func() any, labels []string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != kind {
		return build()
	}
	ls := labelString(labels)
	m, ok := f.metrics[ls]
	if !ok {
		if ls != "" && r.seriesLimit > 0 && len(f.metrics) >= r.seriesLimit {
			// Cardinality cap: hand out a working but unexposed metric
			// instead of growing the family without bound. Counter.Inc is a
			// bare atomic, safe under r.mu.
			r.dropped.Inc()
			return build()
		}
		m = build()
		f.metrics[ls] = m
	}
	return m
}

// Counter returns the named counter, creating it on first use. labels are
// alternating key,value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.metric(name, help, kindCounter, func() any { return &Counter{} }, labels).(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metric(name, help, kindGauge, func() any { return &Gauge{} }, labels).(*Gauge)
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket bounds (nil selects DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	return r.metric(name, help, kindHistogram, func() any { return newHistogram(bounds) }, labels).(*Histogram)
}
