// Package experiments reproduces every table and figure of the paper's
// evaluation (§3, §5–§8) on the simulator substrate. Each experiment is a
// function from a Lab (trained models + scenario machinery) to a Table that
// prints the same rows/series the paper reports. The per-experiment index
// in DESIGN.md maps figure numbers to the functions here.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: named rows by named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	// Notes carries methodology remarks printed under the table.
	Notes []string
}

// Row is one labelled result line.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Get returns the value at (rowLabel, column), for tests and summaries.
func (t *Table) Get(rowLabel, column string) (float64, error) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("experiments: table %q has no column %q", t.Title, column)
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			if col >= len(r.Values) {
				return 0, fmt.Errorf("experiments: row %q of %q has no column %d", rowLabel, t.Title, col)
			}
			return r.Values[col], nil
		}
	}
	return 0, fmt.Errorf("experiments: table %q has no row %q", t.Title, rowLabel)
}

// MustGet is Get for tests that construct the table themselves.
func (t *Table) MustGet(rowLabel, column string) float64 {
	v, err := t.Get(rowLabel, column)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	labelW := 12
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := 9
	for _, c := range t.Columns {
		if len(c) > colW {
			colW = len(c)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW+2, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.3f", colW+2, v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
