package evolve

import "moe/internal/expert"

// nicheErrDecay weights the newest relative error in each per-niche rolling
// average. It is slower than the health tracker's EMA on purpose: health
// reacts to breakage within a handful of steps, retirement judges a career.
const nicheErrDecay = 0.1

// NicheStats tracks, for every expert in the pool, how often it was
// selected in each environment niche and its rolling relative
// environment-prediction error there. Retirement reads it: an expert
// persistently beaten in every niche it actually served is dominated —
// its coverage is redundant and its slot is worth recycling. Spawning reads
// it too: the parent of a candidate is the proven best of a niche.
//
// Storage is a flat k×NicheCount matrix so pool membership changes are
// simple row splices and checkpointing is three slices.
type NicheStats struct {
	k    int
	sel  []int     // selections, row-major [expert][niche]
	err  []float64 // rolling relative error
	seen []bool    // err initialized
}

// NewNicheStats returns empty bookkeeping for a pool of k experts.
func NewNicheStats(k int) *NicheStats {
	return &NicheStats{
		k:    k,
		sel:  make([]int, k*expert.NicheCount),
		err:  make([]float64, k*expert.NicheCount),
		seen: make([]bool, k*expert.NicheCount),
	}
}

// K returns the number of experts tracked.
func (s *NicheStats) K() int { return s.k }

func (s *NicheStats) idx(k, niche int) int { return k*expert.NicheCount + niche }

// AddExpert appends a blank row for a newborn.
func (s *NicheStats) AddExpert() {
	s.k++
	s.sel = append(s.sel, make([]int, expert.NicheCount)...)
	s.err = append(s.err, make([]float64, expert.NicheCount)...)
	s.seen = append(s.seen, make([]bool, expert.NicheCount)...)
}

// RemoveExpert splices out expert k's row.
func (s *NicheStats) RemoveExpert(k int) {
	lo, hi := k*expert.NicheCount, (k+1)*expert.NicheCount
	s.sel = append(s.sel[:lo], s.sel[hi:]...)
	s.err = append(s.err[:lo], s.err[hi:]...)
	s.seen = append(s.seen[:lo], s.seen[hi:]...)
	s.k--
}

// ObserveErr folds one scored relative error into expert k's record for the
// niche.
func (s *NicheStats) ObserveErr(k, niche int, relErr float64) {
	i := s.idx(k, niche)
	if s.seen[i] {
		s.err[i] += nicheErrDecay * (relErr - s.err[i])
	} else {
		s.err[i] = relErr
		s.seen[i] = true
	}
}

// ObserveSelection records that expert k was chosen while the environment
// sat in the niche.
func (s *NicheStats) ObserveSelection(k, niche int) {
	s.sel[s.idx(k, niche)]++
}

// Dominated reports whether expert k has been persistently beaten in every
// niche it has ever been selected in: each such niche holds another expert
// whose rolling error there is at least margin times better. An expert
// never selected anywhere, or lacking scored evidence in a selected niche,
// is not dominated — retirement requires proof, not absence of it.
func (s *NicheStats) Dominated(k int, margin float64) bool {
	served := false
	for n := 0; n < expert.NicheCount; n++ {
		i := s.idx(k, n)
		if s.sel[i] == 0 {
			continue
		}
		served = true
		if !s.seen[i] {
			return false
		}
		beaten := false
		for o := 0; o < s.k; o++ {
			if o == k {
				continue
			}
			j := s.idx(o, n)
			if s.seen[j] && s.err[i] > margin*s.err[j] {
				beaten = true
				break
			}
		}
		if !beaten {
			return false
		}
	}
	return served
}

// BestInNiche returns the admissible expert with the lowest scored error in
// the niche, or -1 when none has evidence there.
func (s *NicheStats) BestInNiche(niche int, admissible func(int) bool) int {
	best := -1
	for k := 0; k < s.k; k++ {
		i := s.idx(k, niche)
		if !s.seen[i] || !admissible(k) {
			continue
		}
		if best == -1 || s.err[i] < s.err[s.idx(best, niche)] {
			best = k
		}
	}
	return best
}

// Export returns copies of the three matrices for checkpointing.
func (s *NicheStats) Export() (sel []int, errs []float64, seen []bool) {
	sel = append([]int(nil), s.sel...)
	errs = append([]float64(nil), s.err...)
	seen = append([]bool(nil), s.seen...)
	return sel, errs, seen
}

// NewNicheStatsFrom rebuilds bookkeeping from checkpointed matrices. The
// slices must all be k×NicheCount long.
func NewNicheStatsFrom(k int, sel []int, errs []float64, seen []bool) *NicheStats {
	return &NicheStats{
		k:    k,
		sel:  append([]int(nil), sel...),
		err:  append([]float64(nil), errs...),
		seen: append([]bool(nil), seen...),
	}
}
