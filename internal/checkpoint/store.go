package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"moe/internal/atomicio"
)

// Store manages a checkpoint directory:
//
//	snap-NNNNNNNNNNNN.ckpt     snapshot taken at decision count N
//	journal-NNNNNNNNNNNN.wal   observations for decisions N+1, N+2, …
//
// Writing a snapshot is atomic (temp + fsync + rename + dir fsync) and
// rotates the journal to a fresh epoch; the previous snapshot generation
// and its journal are retained so a torn newest snapshot still recovers to
// the exact same state through the older snapshot plus its full journal.
// Appends go to the current journal as individually checksummed records.
//
// A Store is not safe for concurrent use; Runtime serializes access under
// its own lock.
type Store struct {
	dir  string
	sync bool

	journal      *os.File
	journalEpoch int

	// snapshotFault injects crashes into snapshot writes (tests only).
	snapshotFault atomicio.FaultFn
}

// Options tunes a store.
type Options struct {
	// DisableSync skips the per-append fsync (snapshot atomicity is kept).
	// A crash may then lose the journal tail that was still in the page
	// cache — recovery still yields a valid, slightly older state. Used by
	// simulation studies where thousands of appends per run would
	// otherwise be fsync-bound.
	DisableSync bool
}

// generations is how many snapshot generations (snapshot + its journal)
// are retained; older ones are pruned after each successful snapshot.
const generations = 2

// Open creates (if needed) and opens a checkpoint directory with default
// options: every journal append is fsynced.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit options.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	return &Store{dir: dir, sync: !opts.DisableSync}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the current journal (syncing it first).
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.Sync()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}

const (
	snapPrefix    = "snap-"
	snapSuffix    = ".ckpt"
	journalPrefix = "journal-"
	journalSuffix = ".wal"
	seqDigits     = 12
)

func snapName(decisions int) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, seqDigits, decisions, snapSuffix)
}

func journalName(epoch int) string {
	return fmt.Sprintf("%s%0*d%s", journalPrefix, seqDigits, epoch, journalSuffix)
}

// parseSeq extracts the decision count from a snapshot or journal file
// name; ok is false for anything else (including temp files).
func parseSeq(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != seqDigits {
		return 0, false
	}
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// list returns the decision counts of all files with the given naming
// scheme, ascending.
func (s *Store) list(prefix, suffix string) ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", s.dir, err)
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// WriteSnapshot durably records a full state, rotates the journal to a new
// epoch at st.Decisions, and prunes generations beyond the retention
// window. On success the state is recoverable even if every later write is
// torn.
func (s *Store) WriteSnapshot(st *State) error {
	data, err := EncodeSnapshot(st)
	if err != nil {
		return err
	}
	if err := atomicio.WriteFileHooked(filepath.Join(s.dir, snapName(st.Decisions)), data, 0o644, s.snapshotFault); err != nil {
		return err
	}
	if err := s.rotateJournal(st.Decisions); err != nil {
		return err
	}
	return s.prune()
}

// rotateJournal closes the current journal and starts a fresh one whose
// epoch is the given decision count, writing its header record durably.
func (s *Store) rotateJournal(epoch int) error {
	if err := s.Close(); err != nil {
		return err
	}
	path := filepath.Join(s.dir, journalName(epoch))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating journal %s: %w", path, err)
	}
	e := &enc{}
	e.int(epoch)
	if _, err := f.Write(appendRecord(nil, recordJournalHeader, e.b)); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: syncing journal: %w", err)
	}
	if err := atomicio.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.journal = f
	s.journalEpoch = epoch
	return nil
}

// Append writes one observation to the current journal. A snapshot must
// have been written first (it opens the journal epoch).
func (s *Store) Append(obs Observation) error {
	if s.journal == nil {
		return fmt.Errorf("checkpoint: no open journal; write a snapshot first")
	}
	e := &enc{}
	encodeObservation(e, &obs)
	if _, err := s.journal.Write(appendRecord(nil, recordJournalEntry, e.b)); err != nil {
		return fmt.Errorf("checkpoint: appending journal entry: %w", err)
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("checkpoint: syncing journal entry: %w", err)
		}
	}
	return nil
}

// prune removes snapshot generations and journals beyond the retention
// window. The current journal epoch is always kept.
func (s *Store) prune() error {
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	if len(snaps) > generations {
		for _, n := range snaps[:len(snaps)-generations] {
			if err := os.Remove(filepath.Join(s.dir, snapName(n))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		snaps = snaps[len(snaps)-generations:]
	}
	keepFrom := 0
	if len(snaps) > 0 {
		keepFrom = snaps[0]
	}
	journals, err := s.list(journalPrefix, journalSuffix)
	if err != nil {
		return err
	}
	for _, n := range journals {
		if n < keepFrom && n != s.journalEpoch {
			if err := os.Remove(filepath.Join(s.dir, journalName(n))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	// Crash leftovers from interrupted snapshot writes are harmless but
	// accumulate; sweep them while we are here.
	return atomicio.RemoveTemps(s.dir)
}

// Recovery is the result of reading a checkpoint directory after a crash.
type Recovery struct {
	// State is the newest intact snapshot, or nil for a cold start.
	State *State
	// Tail holds the journaled observations recorded after State (or from
	// the beginning, for a cold start with an epoch-0 journal), in
	// decision order, up to the first sign of corruption.
	Tail []Observation
	// Report documents the ladder: which files were used, skipped, or cut
	// short, and why. Purely informational.
	Report []string
}

// Decisions returns the decision count the recovered state reaches once
// the tail is replayed.
func (r *Recovery) Decisions() int {
	d := len(r.Tail)
	if r.State != nil {
		d += r.State.Decisions
	}
	return d
}

// Recover reads the directory and returns the best recoverable state:
// the newest snapshot that validates, plus the longest contiguous journal
// chain on top of it. It never panics on arbitrary file contents and never
// returns an error for corruption — corruption just lands lower on the
// ladder (ultimately a cold start). Errors are reserved for I/O failures
// reading the directory itself.
//
// Call Recover before the store's first WriteSnapshot/Append; the open
// journal belongs to the writer side.
func (s *Store) Recover() (*Recovery, error) {
	rec := &Recovery{}
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			rec.Report = append(rec.Report, "no checkpoint directory; cold start")
			return rec, nil
		}
		return nil, err
	}

	// Rung 1: newest intact snapshot.
	base := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		name := snapName(snaps[i])
		data, rerr := os.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: unreadable (%v); trying older", name, rerr))
			continue
		}
		st, derr := DecodeSnapshot(data)
		if derr != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: rejected (%v); trying older", name, derr))
			continue
		}
		if st.Decisions != snaps[i] {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: decision count %d does not match file name; trying older", name, st.Decisions))
			continue
		}
		rec.State = st
		base = snaps[i]
		rec.Report = append(rec.Report, fmt.Sprintf("%s: loaded", name))
		break
	}
	if rec.State == nil {
		rec.Report = append(rec.Report, "no intact snapshot; cold start")
	}

	// Rung 2: the contiguous journal chain from the base decision count.
	journals, err := s.list(journalPrefix, journalSuffix)
	if err != nil {
		return nil, err
	}
	expected := base
	for _, epoch := range journals {
		if epoch < expected {
			continue
		}
		if epoch > expected {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: epoch gap (want %d); stopping replay", journalName(epoch), expected))
			break
		}
		entries, clean := s.readJournal(epoch, rec)
		rec.Tail = append(rec.Tail, entries...)
		expected += len(entries)
		if !clean {
			break
		}
	}
	return rec, nil
}

// readJournal reads one journal file, validating the header and collecting
// entries until the first torn or corrupt record. clean reports whether the
// file was consumed without any defect (so a following epoch may continue
// the chain).
func (s *Store) readJournal(epoch int, rec *Recovery) (entries []Observation, clean bool) {
	name := journalName(epoch)
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: unreadable (%v)", name, err))
		return nil, false
	}
	kind, payload, size, err := readRecord(data)
	if err != nil || kind != recordJournalHeader {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: bad header; ignoring file", name))
		return nil, false
	}
	hd := &dec{b: payload}
	if got := hd.int(); hd.done() != nil || got != epoch {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: header epoch mismatch; ignoring file", name))
		return nil, false
	}
	data = data[size:]
	for len(data) > 0 {
		kind, payload, size, err = readRecord(data)
		if err != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: torn tail after %d entries (%v)", name, len(entries), err))
			return entries, false
		}
		if kind != recordJournalEntry {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: unexpected record kind %d after %d entries", name, kind, len(entries)))
			return entries, false
		}
		d := &dec{b: payload}
		obs := decodeObservation(d)
		if d.done() != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: malformed entry after %d entries", name, len(entries)))
			return entries, false
		}
		entries = append(entries, obs)
		data = data[size:]
	}
	rec.Report = append(rec.Report, fmt.Sprintf("%s: replayed %d entries", name, len(entries)))
	return entries, true
}
