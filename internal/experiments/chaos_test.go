package experiments

import (
	"testing"
)

// TestChaosStudyMixtureDegradesGracefully is the study's acceptance
// property: under at least three fault kinds the mixture retains strictly
// more of its fault-free performance than every single expert from its own
// pool — diversity plus the fallback chain beats any one model under fire.
func TestChaosStudyMixtureDegradesGracefully(t *testing.T) {
	l := lab(t)
	sc := Scale{Targets: []string{"lu", "mg"}, Repeats: 2, Seed: 5}
	tab, err := l.chaosStudy(sc, 800)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	experts := []string{"expert1", "expert2", "expert3", "expert4"}
	wins := 0
	for _, row := range tab.Rows {
		if row.Label == "hmean" {
			continue
		}
		mix := tab.MustGet(row.Label, "mixture")
		if mix <= 0 {
			t.Errorf("%s: non-positive mixture retention %v", row.Label, mix)
		}
		beatsAll := true
		for _, e := range experts {
			if mix <= tab.MustGet(row.Label, e) {
				beatsAll = false
				break
			}
		}
		if beatsAll {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("mixture strictly beat every single expert under only %d fault kinds, want >= 3\n%s", wins, tab)
	}
}
