package training

import (
	"fmt"
	"math"

	"moe/internal/core"
	"moe/internal/expert"
	"moe/internal/features"
)

// TrainGating fits the offline prior for the expert selector: a multiclass
// perceptron over standardized features whose label for each training
// sample is the expert whose thread predictor would have served that state
// best. The returned selector starts from this partition and keeps adapting
// online from environment-prediction errors, realizing the paper's
// combination of offline prior models and online learning (§1).
//
// epochs ≤ 0 selects the default (8 passes).
func TrainGating(ds *DataSet, set expert.Set, epochs int) (*core.HyperplaneSelector, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("training: gating needs training samples")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if epochs <= 0 {
		epochs = 8
	}
	k := len(set)
	sel := core.NewHyperplaneSelector(k, 0)
	if k == 1 {
		return sel, nil
	}

	// Standardization statistics over the training features.
	var mean, std [features.Dim]float64
	n := float64(len(ds.Samples))
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			mean[i] += s.Features[i]
		}
	}
	for i := range mean {
		mean[i] /= n
	}
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			d := s.Features[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / n)
		if std[i] < 1e-6 {
			std[i] = 1
		}
	}

	// For each sample, evaluate every expert's thread choice against the
	// sample's measured speedup curve. The best expert is the label; the
	// *regret* of picking another expert (relative speedup lost) weights
	// the perceptron updates, so routing mistakes that barely matter
	// teach gently while catastrophic ones teach hard.
	speedupAt := func(s LabeledSample, n int) float64 {
		if len(s.Speedups) == 0 {
			return 1
		}
		if n < 1 {
			n = 1
		}
		if n > len(s.Speedups) {
			n = len(s.Speedups)
		}
		return s.Speedups[n-1]
	}
	labels := make([]int, len(ds.Samples))
	gains := make([][]float64, len(ds.Samples)) // per-expert achieved speedup
	for si, s := range ds.Samples {
		gains[si] = make([]float64, k)
		best, bestV := 0, math.Inf(-1)
		for ki, e := range set {
			v := speedupAt(s, e.PredictThreads(s.Features, 0))
			gains[si][ki] = v
			if v > bestV {
				best, bestV = ki, v
			}
		}
		labels[si] = best
	}

	// Averaged cost-sensitive multiclass perceptron.
	theta := make([][]float64, k)
	sum := make([][]float64, k)
	for i := range theta {
		theta[i] = make([]float64, features.Dim+1)
		sum[i] = make([]float64, features.Dim+1)
	}
	x := make([]float64, features.Dim+1)
	updates := 0.0
	const rate = 0.1
	for ep := 0; ep < epochs; ep++ {
		for si, s := range ds.Samples {
			for i := 0; i < features.Dim; i++ {
				x[i] = (s.Features[i] - mean[i]) / std[i]
			}
			x[features.Dim] = 1
			pred, predV := 0, math.Inf(-1)
			for ki := range theta {
				v := 0.0
				for i := range x {
					v += theta[ki][i] * x[i]
				}
				if v > predV {
					pred, predV = ki, v
				}
			}
			if pred != labels[si] {
				label := labels[si]
				regret := 0.0
				if gains[si][label] > 0 {
					regret = (gains[si][label] - gains[si][pred]) / gains[si][label]
				}
				if regret > 0 {
					for i := range x {
						theta[label][i] += rate * regret * x[i]
						theta[pred][i] -= rate * regret * x[i]
					}
				}
			}
			for ki := range theta {
				for i := range x {
					sum[ki][i] += theta[ki][i]
				}
			}
			updates++
		}
	}
	for ki := range sum {
		for i := range sum[ki] {
			sum[ki][i] /= updates
		}
	}

	if err := sel.Pretrain(sum, mean, std, n); err != nil {
		return nil, err
	}
	return sel, nil
}

// NewMixturePolicy builds a ready-to-run mixture over the expert set with
// an offline-pretrained gating selector — the configuration the paper
// evaluates. Each call returns a fresh policy instance (mixtures are
// stateful and must not be shared between runs).
func NewMixturePolicy(ds *DataSet, set expert.Set) (*core.Mixture, error) {
	sel, err := TrainGating(ds, set, 0)
	if err != nil {
		return nil, err
	}
	return core.NewMixture(set, core.Options{Selector: sel})
}
