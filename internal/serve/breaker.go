package serve

import "time"

// breaker is the per-tenant circuit: the tenant-granularity mirror of the
// per-expert quarantine ladder in internal/core/health.go. A recovered
// panic trips it open (quarantine with exponential backoff); when the
// quarantine lapses the tenant re-enters through probation, and only a run
// of consecutively clean requests — mirroring probationLength — restores
// good standing and resets the backoff. A violation during probation trips
// it straight back open with the backoff doubled, exactly like an expert
// re-quarantined out of probation.
//
// All methods are guarded by the owning tenant's mutex.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerProbation
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "ok"
	case breakerOpen:
		return "quarantined"
	case breakerProbation:
		return "probation"
	}
	return "unknown"
}

type breaker struct {
	state     breakerState
	openUntil time.Time
	backoff   time.Duration // duration of the next quarantine
	base      time.Duration
	max       time.Duration
	probation int // clean requests required to close from probation
	probeLeft int
	trips     int // lifetime count, for /v1/tenants
}

func newBreaker(base, max time.Duration, probation int) *breaker {
	return &breaker{backoff: base, base: base, max: max, probation: probation}
}

// admit reports whether a request may proceed. An open breaker whose
// quarantine has lapsed admits the request and moves to probation; one
// still cooling off refuses with the remaining quarantine as the retry
// hint.
func (b *breaker) admit(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.state != breakerOpen {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	b.state = breakerProbation
	b.probeLeft = b.probation
	return true, 0
}

// trip opens the circuit for the current backoff and doubles it for the
// next trip, saturating at max.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openUntil = now.Add(b.backoff)
	b.trips++
	b.backoff *= 2
	if b.backoff > b.max {
		b.backoff = b.max
	}
}

// succeed records a cleanly served request; enough of them in probation
// close the circuit and forgive the accumulated backoff.
func (b *breaker) succeed() {
	if b.state != breakerProbation {
		return
	}
	if b.probeLeft--; b.probeLeft <= 0 {
		b.state = breakerClosed
		b.backoff = b.base
	}
}
