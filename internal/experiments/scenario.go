package experiments

import (
	"fmt"

	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Defaults for the evaluation protocol (§6).
const (
	// DefaultMaxTime bounds one co-execution run in virtual seconds.
	DefaultMaxTime = 3000
	// DefaultRateNoise is the relative measurement noise policies see.
	DefaultRateNoise = 0.12
	// DefaultRepeats mirrors §6.1: "each experiment was repeated 3 times
	// and the mean value of program execution time reported".
	DefaultRepeats = 3
)

// ScenarioSpec is one co-execution experiment configuration.
type ScenarioSpec struct {
	// Target program name.
	Target string
	// Workload programs that co-execute (loop until the target
	// finishes); empty means isolated.
	Workload []string
	// HWFreq selects the hardware-change frequency (§6.4).
	HWFreq trace.Frequency
	// Affinity enables affinity scheduling (§7.6).
	Affinity bool
	// WorkloadPolicy names the policy workload programs run; empty means
	// the OpenMP default. The adaptive-workload experiment (§7.4) sets
	// this.
	WorkloadPolicy PolicyName
	// Seed drives hardware trace generation and measurement noise; vary
	// it across repeats.
	Seed uint64
	// MaxTime overrides DefaultMaxTime when positive.
	MaxTime float64
	// RecordSamples forwards to the engine (timeline figures).
	RecordSamples bool
	// Machine overrides the lab's evaluation machine for this scenario
	// (the portability study, §7.5). Carrying the override in the spec —
	// instead of mutating Lab.Eval — keeps concurrent scenarios on
	// different platforms independent.
	Machine *sim.MachineConfig
}

// RunOutcome is the result of one scenario run under one policy.
type RunOutcome struct {
	// ExecTime is the target's completion time (virtual seconds).
	ExecTime float64
	// WorkloadThroughput is aggregate workload work per second (Fig 13a).
	WorkloadThroughput float64
	// Policy is the policy instance after the run (for mixture
	// statistics).
	Policy sim.Policy
	// Result is the raw simulation result.
	Result *sim.Result
}

// Run executes the scenario under the named target policy.
func (l *Lab) Run(spec ScenarioSpec, name PolicyName) (*RunOutcome, error) {
	p, err := l.NewPolicy(name, spec.Target, spec.Seed)
	if err != nil {
		return nil, err
	}
	return l.RunWithPolicy(spec, p)
}

// RunWithPolicy executes the scenario with a caller-supplied target policy
// instance (single-expert and subset-mixture runs).
func (l *Lab) RunWithPolicy(spec ScenarioSpec, target sim.Policy) (*RunOutcome, error) {
	prog, err := workload.ByName(spec.Target)
	if err != nil {
		return nil, err
	}
	maxTime := spec.MaxTime
	if maxTime <= 0 {
		maxTime = DefaultMaxTime
	}

	machine := l.Eval
	if spec.Machine != nil {
		machine = *spec.Machine
	}
	machine.Affinity = spec.Affinity
	rng := trace.NewRNG(spec.Seed ^ 0x5ce4a510)
	hw, err := trace.GenerateHardware(rng, machine.Cores, spec.HWFreq, maxTime)
	if err != nil {
		return nil, err
	}
	machine.Hardware = hw

	specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: target, Target: true}}
	for i, name := range spec.Workload {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		wp, err := l.workloadPolicy(spec, name, spec.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sim.ProgramSpec{Program: wl.Clone(), Policy: wp, Loop: true})
	}

	res, err := sim.Run(sim.Scenario{
		Stepping:      l.Stepping,
		Machine:       machine,
		Programs:      specs,
		MaxTime:       maxTime,
		RateNoise:     DefaultRateNoise,
		Seed:          spec.Seed,
		RecordSamples: spec.RecordSamples,
	})
	if err != nil {
		return nil, err
	}
	tr, err := res.Target()
	if err != nil {
		return nil, err
	}
	exec, err := effectiveExecTime(tr, prog.TotalWork(), maxTime)
	if err != nil {
		return nil, fmt.Errorf("experiments: target %s under %s: %w", spec.Target, target.Name(), err)
	}
	return &RunOutcome{
		ExecTime:           exec,
		WorkloadThroughput: res.WorkloadThroughput(),
		Policy:             target,
		Result:             res,
	}, nil
}

// effectiveExecTime returns the target's completion time; when the run was
// cut off by the time cap, completion is extrapolated from the achieved
// work rate (a policy that pins a program at a crawl still gets a finite —
// terrible — number instead of aborting the sweep).
func effectiveExecTime(tr *sim.ProgramResult, totalWork, maxTime float64) (float64, error) {
	if tr.Finished {
		return tr.ExecTime, nil
	}
	if tr.WorkDone <= 0 || totalWork <= 0 {
		return 0, fmt.Errorf("no progress within %.0fs", maxTime)
	}
	return maxTime * totalWork / tr.WorkDone, nil
}

// workloadPolicy builds the policy driving a workload program.
func (l *Lab) workloadPolicy(spec ScenarioSpec, program string, seed uint64) (sim.Policy, error) {
	name := spec.WorkloadPolicy
	if name == "" {
		name = PolicyDefault
	}
	return l.NewPolicy(name, program, seed)
}

// Speedup runs the scenario under both the baseline (OpenMP default) and
// the named policy with identical seeds — "the same external workload is
// reproduced for all evaluated policies" (§6.4) — averaged over repeats,
// and returns exec-time speedup over the default plus the relative
// workload throughput.
func (l *Lab) Speedup(spec ScenarioSpec, name PolicyName, repeats int) (speedup, workloadRel float64, err error) {
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	// Fan the repeat × {default, policy} grid out on the lab pool; the
	// reduction below walks results in repeat order, so sums accumulate
	// exactly as the serial loop did.
	outs, err := grid(l, repeats*2, func(i int) (*RunOutcome, error) {
		s := spec
		s.Seed = spec.Seed + uint64(i/2)*1000003
		if i%2 == 0 {
			return l.Run(s, PolicyDefault)
		}
		return l.Run(s, name)
	})
	if err != nil {
		return 0, 0, err
	}
	var sumBase, sumPol, sumWLBase, sumWLPol float64
	for r := 0; r < repeats; r++ {
		base, out := outs[r*2], outs[r*2+1]
		sumBase += base.ExecTime
		sumPol += out.ExecTime
		sumWLBase += base.WorkloadThroughput
		sumWLPol += out.WorkloadThroughput
	}
	speedup = sumBase / sumPol
	if sumWLBase > 0 {
		workloadRel = sumWLPol / sumWLBase
	}
	return speedup, workloadRel, nil
}
