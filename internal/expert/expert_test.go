package expert

import (
	"math"
	"testing"
	"testing/quick"

	"moe/internal/features"
	"moe/internal/regress"
)

func flatModel(val float64) *regress.Model {
	return &regress.Model{Weights: make([]float64, features.Dim), Bias: val}
}

func testExpert(threadBias float64) *Expert {
	return &Expert{
		Name:       "T",
		Threads:    flatModel(threadBias),
		Env:        NormEnvModel{Model: flatModel(10)},
		MaxThreads: 32,
	}
}

func TestCanonical4MatchesTable1(t *testing.T) {
	set := Canonical4()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("canonical set has %d experts", len(set))
	}
	names := set.Names()
	for i, want := range []string{"E1", "E2", "E3", "E4"} {
		if names[i] != want {
			t.Errorf("expert %d named %s", i, names[i])
		}
	}
	// Spot-check published coefficients (Table 1).
	e1 := set[0]
	co := e1.Threads.Coefficients()
	if co[0] != 1.05 || co[1] != -1.52 || co[10] != -1.21 {
		t.Errorf("E1 w coefficients: %v", co)
	}
	nm, ok := e1.Env.(NormEnvModel)
	if !ok {
		t.Fatal("canonical env model should be norm-shaped")
	}
	mo := nm.Model.Coefficients()
	if mo[0] != -0.47 || mo[10] != 0.25 {
		t.Errorf("E1 m coefficients: %v", mo)
	}
	if set.MaxThreads() != 32 {
		t.Errorf("MaxThreads = %d", set.MaxThreads())
	}
}

func TestCanonicalWorkedExampleDirection(t *testing.T) {
	// §5.4's worked example: at f1, expert E2 predicts a *lower*
	// environment norm than E1 and a higher thread count. Verify the
	// published coefficients keep that relative order at that state.
	f1, err := features.FromSlice([]float64{0.032, 0.026, 0.2, 4, 8, 16, 4.76, 2.17, 1.11, 1.65})
	if err != nil {
		t.Fatal(err)
	}
	set := Canonical4()
	e1env := set[0].PredictEnv(f1).Norm
	e2env := set[1].PredictEnv(f1).Norm
	if e2env >= e1env {
		t.Errorf("E2 env (%v) should be below E1 env (%v) at the §5.4 state", e2env, e1env)
	}
}

func TestPredictThreadsClamping(t *testing.T) {
	e := testExpert(100) // raw prediction far above any cap
	var f features.Vector
	if got := e.PredictThreads(f, 0); got != 32 {
		t.Errorf("platform cap: got %d", got)
	}
	if got := e.PredictThreads(f, 8); got != 8 {
		t.Errorf("caller cap: got %d", got)
	}
	low := testExpert(-5)
	if got := low.PredictThreads(f, 0); got != 1 {
		t.Errorf("floor: got %d", got)
	}
}

func TestValidate(t *testing.T) {
	good := testExpert(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilExpert *Expert
	if err := nilExpert.Validate(); err == nil {
		t.Error("nil expert should fail")
	}
	cases := []*Expert{
		{Name: "a", Env: NormEnvModel{Model: flatModel(1)}, MaxThreads: 4},                                                 // no threads
		{Name: "b", Threads: flatModel(1), MaxThreads: 4},                                                                  // no env
		{Name: "c", Threads: &regress.Model{Weights: []float64{1}}, Env: NormEnvModel{Model: flatModel(1)}, MaxThreads: 4}, // wrong dim
		{Name: "d", Threads: flatModel(1), Env: NormEnvModel{Model: flatModel(1)}, MaxThreads: 0},                          // no cap
	}
	for _, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("expert %s should fail validation", e.Name)
		}
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set should fail")
	}
	dup := Set{testExpert(1), testExpert(2)}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names should fail")
	}
}

func TestNormEnvModelClampsNegative(t *testing.T) {
	m := NormEnvModel{Model: flatModel(-5)}
	var f features.Vector
	if got := m.Predict(f); got.Norm != 0 {
		t.Errorf("negative norm prediction should clamp to 0, got %v", got.Norm)
	}
}

func TestEnvPredictionRawError(t *testing.T) {
	obs := features.Env{WorkloadThreads: 3, Processors: 4}
	// Norm-only prediction: |ê − ‖e‖|.
	p := EnvPrediction{Norm: 7}
	if got := p.RawError(obs); math.Abs(got-2) > 1e-12 {
		t.Errorf("norm error = %v, want 2", got)
	}
	// Vector prediction: Euclidean distance.
	pv := EnvPrediction{HasVec: true, Vec: features.Env{WorkloadThreads: 0, Processors: 0}}
	if got := pv.RawError(obs); math.Abs(got-5) > 1e-12 {
		t.Errorf("vector error = %v, want 5", got)
	}
}

func TestEnvPredictionMahalanobisGating(t *testing.T) {
	obs := features.Env{WorkloadThreads: 10}
	pred := features.Env{WorkloadThreads: 12}
	tight := EnvPrediction{HasVec: true, Vec: pred}
	sigmaTight := [features.EnvDim]float64{0.5, 1, 1, 1, 1, 1, 1}
	tight.Sigma = &sigmaTight
	loose := EnvPrediction{HasVec: true, Vec: pred}
	sigmaLoose := [features.EnvDim]float64{4, 1, 1, 1, 1, 1, 1}
	loose.Sigma = &sigmaLoose
	if tight.Error(obs) <= loose.Error(obs) {
		t.Error("the same residual must surprise a tight predictor more than a loose one")
	}
	// Raw error identical regardless of sigma.
	if tight.RawError(obs) != loose.RawError(obs) {
		t.Error("RawError must ignore sigma")
	}
}

func TestVectorEnvModelPredict(t *testing.T) {
	var vm VectorEnvModel
	for i := range vm.Models {
		vm.Models[i] = flatModel(float64(i + 1))
	}
	if err := vm.Validate(); err != nil {
		t.Fatal(err)
	}
	var f features.Vector
	p := vm.Predict(f)
	if !p.HasVec {
		t.Fatal("vector model should fill Vec")
	}
	if p.Vec.WorkloadThreads != 1 || p.Vec.PageFreeRate != 7 {
		t.Errorf("vector prediction = %+v", p.Vec)
	}
	if p.Sigma != nil {
		t.Error("zero sigma should disable the Mahalanobis scale")
	}
	vm.Sigma[0] = 2
	if p2 := vm.Predict(f); p2.Sigma == nil {
		t.Error("non-zero sigma should be exported")
	}
	var bad VectorEnvModel
	if err := bad.Validate(); err == nil {
		t.Error("missing dimension models should fail validation")
	}
}

func TestOODScore(t *testing.T) {
	e := testExpert(4)
	for i := range e.FeatMean {
		e.FeatMean[i] = 10
		e.FeatStd[i] = 2
	}
	var inDist features.Vector
	for i := range inDist {
		inDist[i] = 10
	}
	if got := e.OODScore(inDist); got != 0 {
		t.Errorf("at the mean the OOD score should be 0, got %v", got)
	}
	far := inDist
	for i := features.EnvStart; i < features.Dim; i++ {
		far[i] = 30 // 10 standard deviations out
	}
	if got := e.OODScore(far); got < 5 {
		t.Errorf("far state should score high, got %v", got)
	}
	noStats := testExpert(4)
	if noStats.OODScore(far) != 0 {
		t.Error("without stats the score should be 0")
	}
}

func TestSpeedupModelBest(t *testing.T) {
	// Build a speedup model with a known peak: x = 6n − n²/2 peaks at
	// n = 6.
	w := make([]float64, speedupBasisDim)
	w[features.Dim+0] = 6
	w[features.Dim+1] = -0.5
	sm := &SpeedupModel{Model: &regress.Model{Weights: w, Bias: 0}}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	var f features.Vector
	n, v := sm.Best(f, 32)
	if n != 6 {
		t.Errorf("argmax = %d, want 6", n)
	}
	if math.Abs(v-18) > 1e-9 {
		t.Errorf("peak value = %v, want 18", v)
	}
	// Cap respected.
	if n, _ := sm.Best(f, 3); n != 3 {
		t.Errorf("capped argmax = %d, want 3", n)
	}
}

func TestSpeedupBasisInteractions(t *testing.T) {
	var f features.Vector
	f[features.WorkloadThreads] = 7
	f[features.Processors] = 3
	x := SpeedupBasis(f, 4)
	if len(x) != speedupBasisDim {
		t.Fatalf("basis width %d", len(x))
	}
	if x[features.Dim] != 4 || x[features.Dim+1] != 16 {
		t.Error("n and n² terms wrong")
	}
	if x[features.Dim+2] != 28 || x[features.Dim+3] != 12 {
		t.Error("interaction terms wrong")
	}
}

func TestPredictThreadsOODBlend(t *testing.T) {
	// Direct predictor says 4; speedup surface peaks at 16. In
	// distribution the direct wins; far out, the argmax wins.
	e := testExpert(4)
	w := make([]float64, speedupBasisDim)
	w[features.Dim+0] = 16
	w[features.Dim+1] = -0.5
	e.Speedup = &SpeedupModel{Model: &regress.Model{Weights: w, Bias: 0}}
	for i := range e.FeatMean {
		e.FeatMean[i] = 10
		e.FeatStd[i] = 1
	}
	var in features.Vector
	for i := range in {
		in[i] = 10
	}
	if got := e.PredictThreads(in, 32); got != 4 {
		t.Errorf("in-distribution choice = %d, want the direct predictor's 4", got)
	}
	far := in
	for i := features.EnvStart; i < features.Dim; i++ {
		far[i] = 10 + 10
	}
	// Best picks the smallest count within 1% of the peak at 16, i.e. 15.
	if got := e.PredictThreads(far, 32); got < 14 {
		t.Errorf("far-out choice = %d, want the speedup argmax (~15)", got)
	}
}

func TestPredictThreadsAlwaysInRange(t *testing.T) {
	set := Canonical4()
	f := func(raw [features.Dim]float64, cap8 bool) bool {
		var v features.Vector
		for i := range v {
			x := raw[i]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 1e4)
		}
		limit := 32
		callerMax := 0
		if cap8 {
			callerMax, limit = 8, 8
		}
		for _, e := range set {
			n := e.PredictThreads(v, callerMax)
			if n < 1 || n > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
