package moe_test

import (
	"math"
	"sync"
	"testing"

	"moe"
)

func TestRuntimeConcurrentDecide(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
		moe.EnvFeatures{Processors: 16, WorkloadThreads: 8, RunQueue: 2, Load1: 18, Load5: 16, CachedMem: 4, PageFreeRate: 0.1},
	)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := rt.Decide(moe.Observation{Time: float64(g*perG + i), Features: f})
				if n < 1 || n > 16 {
					t.Errorf("decision %d out of range", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := rt.Decisions(); got != goroutines*perG {
		t.Errorf("decisions = %d, want %d", got, goroutines*perG)
	}
	hist := rt.ThreadHistogram()
	sum := 0.0
	for _, frac := range hist {
		sum += frac
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram fractions sum to %v", sum)
	}
}

// TestRuntimeConcurrentAccessors runs deciders and every read accessor
// concurrently; under `go test -race` this proves the documented guarantee
// that a Runtime is safe for unrestricted concurrent use.
func TestRuntimeConcurrentAccessors(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
		moe.EnvFeatures{Processors: 32, WorkloadThreads: 4, RunQueue: 1, Load1: 20, Load5: 18, CachedMem: 8, PageFreeRate: 0.2},
	)
	const deciders, readers, perG = 4, 4, 100
	var wg sync.WaitGroup
	for g := 0; g < deciders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rt.Decide(moe.Observation{Time: float64(g*perG + i), Features: f})
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Each accessor returns a snapshot the reader owns;
				// mutating it mid-flight must be harmless.
				h := rt.ThreadHistogram()
				for k := range h {
					h[k] = -1
				}
				if st, ok := rt.MixtureStatsSnapshot(); ok {
					if len(st.SelectionFraction) > 0 {
						st.SelectionFraction[0] = 99
					}
					st.ThreadHistogram[1] = -5
				}
				_ = rt.Decisions()
				_ = rt.PolicyName()
			}
		}()
	}
	wg.Wait()
	if got := rt.Decisions(); got != deciders*perG {
		t.Errorf("decisions = %d, want %d", got, deciders*perG)
	}
}

func TestRuntimeSnapshotIsolation(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
		moe.EnvFeatures{Processors: 16, WorkloadThreads: 8, RunQueue: 2, Load1: 18, Load5: 16, CachedMem: 4, PageFreeRate: 0.1},
	)
	for i := 0; i < 20; i++ {
		rt.Decide(moe.Observation{Time: float64(i), Features: f})
	}
	// Corrupting a returned histogram must not leak into the runtime.
	h := rt.ThreadHistogram()
	for k := range h {
		h[k] = -1
	}
	sum := 0.0
	for _, frac := range rt.ThreadHistogram() {
		sum += frac
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram corrupted through a returned copy: fractions sum to %v", sum)
	}
	// Same for the mixture stats snapshot.
	st, ok := rt.MixtureStatsSnapshot()
	if !ok {
		t.Fatal("mixture snapshot unavailable")
	}
	st.SelectionFraction[0] = 99
	st.ThreadHistogram[1] = -5
	st2, _ := rt.MixtureStatsSnapshot()
	if st2.SelectionFraction[0] == 99 {
		t.Error("selection fractions shared with caller snapshot")
	}
	if st2.ThreadHistogram[1] == -5 {
		t.Error("thread histogram shared with caller snapshot")
	}
	if st2.Decisions != 20 {
		t.Errorf("snapshot decisions = %d, want 20", st2.Decisions)
	}
}

func TestRuntimeClockMonotone(t *testing.T) {
	rt, err := moe.NewRuntime(moe.NewOnlinePolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var f moe.Features
	f[4] = 8 // processors
	// Out-of-order timestamps must not move the runtime's clock backwards
	// (stateful policies assume monotone time).
	rt.Decide(moe.Observation{Time: 100, Features: f})
	n := rt.Decide(moe.Observation{Time: 5, Features: f})
	if n < 1 || n > 8 {
		t.Errorf("decision %d out of range after clock regression", n)
	}
}

func TestRuntimeDerivesAvailFromFeatures(t *testing.T) {
	rt, err := moe.NewRuntime(moe.NewDefaultPolicy(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var f moe.Features
	f[4] = 12 // f5: processors
	if n := rt.Decide(moe.Observation{Features: f}); n != 12 {
		t.Errorf("default policy through runtime = %d, want 12 (from f5)", n)
	}
	// Explicit AvailableProcs wins over the feature.
	if n := rt.Decide(moe.Observation{Features: f, AvailableProcs: 6}); n != 6 {
		t.Errorf("explicit avail = %d, want 6", n)
	}
	// A dropout (no availability in the observation) carries the last
	// known-good value instead of assuming every processor came back.
	var zero moe.Features
	if n := rt.Decide(moe.Observation{Features: zero}); n != 6 {
		t.Errorf("availability dropout = %d, want the carried 6", n)
	}
	// A fresh runtime with no information at all falls back to the cap.
	rt2, err := moe.NewRuntime(moe.NewDefaultPolicy(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if n := rt2.Decide(moe.Observation{Features: zero}); n != 32 {
		t.Errorf("no processor info ever = %d, want the cap 32", n)
	}
	// Availability above the machine cap is clamped to it.
	if n := rt2.Decide(moe.Observation{Features: zero, AvailableProcs: 1000}); n != 32 {
		t.Errorf("oversized avail = %d, want the cap 32", n)
	}
}

// TestRuntimeSanitizesObservations: garbage observations — NaN features,
// infinite rates, non-finite timestamps — are repaired before any policy
// sees them, the repairs are counted, and decisions stay in range.
func TestRuntimeSanitizesObservations(t *testing.T) {
	rt, err := moe.NewRuntime(moe.NewDefaultPolicy(), 16)
	if err != nil {
		t.Fatal(err)
	}
	var f moe.Features
	f[4] = 8
	rt.Decide(moe.Observation{Time: 10, Features: f, AvailableProcs: 8})
	if got := rt.SanitizedValues(); got != 0 {
		t.Fatalf("clean observation repaired %d values", got)
	}
	bad := f
	bad[5] = math.NaN()
	bad[6] = math.Inf(1)
	n := rt.Decide(moe.Observation{
		Time:     math.NaN(),
		Features: bad,
		Rate:     math.Inf(-1),
	})
	if n < 1 || n > 16 {
		t.Errorf("decision %d out of range on corrupt observation", n)
	}
	if got := rt.SanitizedValues(); got != 2 {
		t.Errorf("SanitizedValues = %d, want 2", got)
	}
	// The NaN timestamp must not have destroyed the clock: a later clean
	// decision still works.
	if n := rt.Decide(moe.Observation{Time: 11, Features: f}); n < 1 || n > 16 {
		t.Errorf("decision %d out of range after clock corruption", n)
	}
}
