package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// TraceWriter is a Sink that streams decision records as NDJSON — one JSON
// object per line, in decision order. Unlike the snapshot artifacts written
// through internal/atomicio's replace protocol, a trace is an append-only
// stream whose value survives the writer's death, so it follows the
// journal's conventions instead: records go straight to the destination
// through a buffer, Flush makes the tail visible, and Close flushes and
// fsyncs (when the destination is a file) before releasing it. A torn final
// line from a crash is expected and tolerated by the parser.
type TraceWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File // non-nil when we own the file (CreateTrace)
	err error
}

// NewTraceWriter wraps an open stream. The caller keeps ownership of w;
// call Flush before reading what was written.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// CreateTrace creates (truncating) an NDJSON trace file. Close the writer
// to flush, sync, and release it.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: creating trace %s: %w", path, err)
	}
	return &TraceWriter{w: bufio.NewWriter(f), f: f}, nil
}

// RecordDecision implements Sink. The first write error is latched; later
// records are dropped silently (the decision path must not fail because a
// disk did). A nil receiver is a no-op, like the registry metrics: a typed
// nil *TraceWriter handed to MultiSink survives its interface nil check.
func (t *TraceWriter) RecordDecision(rec *Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Flush pushes buffered records to the destination. Nil-safe.
func (t *TraceWriter) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err returns the latched write error, if any. Nil-safe.
func (t *TraceWriter) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes, fsyncs (when the writer owns a file), and closes. It
// returns the first error the writer encountered. Nil-safe.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.f != nil {
		if serr := t.f.Sync(); t.err == nil {
			t.err = serr
		}
		if cerr := t.f.Close(); t.err == nil {
			t.err = cerr
		}
		t.f = nil
	}
	return t.err
}

// ReadTrace parses an NDJSON decision trace back into records — the
// round-trip counterpart of TraceWriter. Blank lines are skipped. A torn
// final line (the signature of a crashed writer) ends the trace cleanly;
// corruption anywhere earlier is an error.
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the final one: real corruption.
			return out, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			pendingErr = fmt.Errorf("telemetry: trace line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return out, nil
}

// ReadTraceFile is ReadTrace over a file path.
func ReadTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
