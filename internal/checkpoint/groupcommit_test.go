package checkpoint

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"moe/internal/atomicio"
)

func groupStore(t *testing.T, g *GroupCommitter, name string) *Store {
	t.Helper()
	s, err := OpenOptions(filepath.Join(t.TempDir(), name), Options{GroupCommit: g})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.WriteSnapshot(minimalState()); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return s
}

func minimalState() *State {
	return &State{PolicyName: "default", MaxThreads: 8,
		Policy: PolicyState{Kind: PolicyStateless}}
}

// TestGroupCommitSharesFsyncs proves the core claim: appends from multiple
// stores inside one window become durable through a shared fsync, with the
// savings counted, and every waiter observes success.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	g := NewGroupCommitter(5 * time.Millisecond)
	const stores = 4
	ss := make([]*Store, stores)
	for i := range ss {
		ss[i] = groupStore(t, g, fmt.Sprintf("t%d", i))
	}
	// All four tenants append a 3-observation batch and commit
	// concurrently: one fsync per batch (at most), not one per append,
	// with batches landing in a shared flush window.
	var wg sync.WaitGroup
	errs := make([]error, stores)
	for i := range ss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if err := ss[i].Append(Observation{Time: float64(k)}); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = ss[i].Sync()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	fsyncs, saved := g.Stats()
	// Invariant: issued + saved = what per-append fsync would have issued.
	if fsyncs+saved != stores*3 {
		t.Fatalf("accounting: fsyncs %d + saved %d != %d appends", fsyncs, saved, stores*3)
	}
	if fsyncs != stores || saved != stores*2 {
		t.Fatalf("fsyncs=%d saved=%d, want one fsync per batch (%d) and the rest saved", fsyncs, saved, stores)
	}
	// Everything promised durable must actually be on disk and replayable.
	for i := range ss {
		ss[i].Close()
		rec, err := ss[i].Recover()
		if err != nil {
			t.Fatalf("recover %d: %v", i, err)
		}
		if rec.Decisions() != 3 {
			t.Fatalf("store %d recovered %d decisions, want 3", i, rec.Decisions())
		}
	}
}

// TestGroupCommitZeroWindowIsPassThrough pins the degenerate configs: a
// zero window fsyncs immediately on Sync, and a store without a committer
// keeps today's per-append fsync with Sync a no-op.
func TestGroupCommitZeroWindowIsPassThrough(t *testing.T) {
	g := NewGroupCommitter(0)
	s := groupStore(t, g, "zero")
	if err := s.Append(Observation{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	fsyncs, saved := g.Stats()
	if fsyncs != 1 || saved != 0 {
		t.Fatalf("zero window: fsyncs=%d saved=%d, want 1/0", fsyncs, saved)
	}

	plain, err := OpenOptions(filepath.Join(t.TempDir(), "plain"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.WriteSnapshot(minimalState()); err != nil {
		t.Fatal(err)
	}
	if err := plain.Append(Observation{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := plain.Sync(); err != nil {
		t.Fatalf("Sync on a plain store must be a no-op, got %v", err)
	}
}

// TestGroupCommitSyncFaultIsDiskError routes an injected fsync failure at
// the Sync commit point through the DiskError type, the same classification
// a per-append fsync failure gets (the serving layer latches degraded on it).
func TestGroupCommitSyncFaultIsDiskError(t *testing.T) {
	g := NewGroupCommitter(time.Millisecond)
	s := groupStore(t, g, "fault")
	if err := s.Append(Observation{Time: 1}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected EIO")
	s.SetJournalFault(func(stage atomicio.Stage) error {
		if stage == atomicio.StageSyncFile {
			return injected
		}
		return nil
	})
	err := s.Sync()
	if err == nil || !IsDiskError(err) || !errors.Is(err, injected) {
		t.Fatalf("Sync fault = %v, want DiskError wrapping the injection", err)
	}
	// The dirty flag must survive a failed Sync so a retry still commits.
	s.SetJournalFault(nil)
	if err := s.Sync(); err != nil {
		t.Fatalf("retry after cleared fault: %v", err)
	}
}

// TestGroupCommitDirtyFlushedOnClose: a group-committed store closed with
// deferred appends still syncs them (drain path safety).
func TestGroupCommitDirtyFlushedOnClose(t *testing.T) {
	g := NewGroupCommitter(time.Hour) // window never fires on its own
	s := groupStore(t, g, "close")
	if err := s.Append(Observation{Time: 42}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Decisions() != 1 {
		t.Fatalf("recovered %d decisions after close, want 1", rec.Decisions())
	}
}
