package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestFaultIsolationAcrossTenants is the isolation proof: healthy tenants
// served concurrently with a panicking tenant and a wedging tenant must
// produce thread sequences byte-identical to a solo Runtime fed the same
// streams — the chaos tenants' faults are fully absorbed by the envelope
// (recovered panics, breaker quarantine, watchdog recycle) and never leak
// into anyone else's decisions.
func TestFaultIsolationAcrossTenants(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		CheckpointRoot:    t.TempDir(),
		CheckpointEvery:   32,
		WedgeTimeout:      150 * time.Millisecond,
		WatchdogInterval:  20 * time.Millisecond,
		BreakerBackoff:    50 * time.Millisecond,
		ProbationRequests: 2,
		PolicyBuild:       FaultInjectionBuild(DefaultPolicyBuild),
	})

	healthy := []string{"acct-a", "acct-b", "acct-c", "acct-d", "acct-e", "acct-f"}
	chaos := []string{ChaosPanicPrefix + "-1", ChaosStallPrefix + "-1"}
	const rounds, batch = 16, 16 // 256 observations per tenant: past the panic (50) and stall (200) points

	var wg sync.WaitGroup
	got := make(map[string][]int, len(healthy))
	var mu sync.Mutex
	fail := make(chan string, len(healthy))
	for _, id := range healthy {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var threads []int
			for r := 0; r < rounds; r++ {
				stream := toWire(tenantStream(id, r*batch, batch))
				status, resp, eresp, _ := postDecide(t, ts.URL, id, stream, 5000)
				if status != http.StatusOK {
					fail <- fmt.Sprintf("healthy tenant %s round %d: status %d (%+v)", id, r, status, eresp)
					return
				}
				threads = append(threads, resp.Threads...)
			}
			mu.Lock()
			got[id] = threads
			mu.Unlock()
		}(id)
	}
	for _, id := range chaos {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Chaos tenants shed, fault, and time out; only the
				// envelope's verdicts below matter.
				postDecide(t, ts.URL, id, toWire(tenantStream(id, r*batch, batch)), 400)
			}
		}(id)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Golden check: every healthy tenant matches its solo runtime exactly.
	for _, id := range healthy {
		want := soloThreads(t, tenantStream(id, 0, rounds*batch))
		if fmt.Sprint(got[id]) != fmt.Sprint(want) {
			t.Errorf("tenant %s diverged from solo runtime under chaos:\n got %v\nwant %v", id, got[id], want)
		}
	}

	// The faults really happened and the envelope really absorbed them.
	if v := srv.metrics.panics.Value(); v < 1 {
		t.Error("no panics recovered — the chaos-panic tenant never faulted")
	}
	if v := srv.metrics.breakerTrips.Value(); v < 1 {
		t.Error("breaker never tripped")
	}
	if v := srv.metrics.recycles.Value(); v < 1 {
		t.Error("watchdog never recycled — the chaos-stall tenant never wedged")
	}
	if v := srv.metrics.deadlineExceeded.Value(); v < 1 {
		t.Error("no deadline was exceeded — the stalled request should have hit its")
	}
}
