// Package training builds experts from simulated training runs, following
// the paper's methodology (§5.1, §5.2):
//
//   - training experiments pair one target with one workload program, both
//     from the NAS suite only (§5.2.1 — SpecOMP and Parsec programs are
//     reserved for evaluation), with the thread counts of both programs
//     varied across runs;
//   - each control point contributes one labelled sample: the 10-feature
//     state f, the thread count that maximizes instantaneous speedup
//     (the simulator analog of exhaustively timing every thread count),
//     and the environment norm observed at the next control point;
//   - training programs are split into scalable and non-scalable using the
//     paper's rule — a program is scalable if it achieves at least P/4
//     speedup on P processors (§5.1) — and experts are built per
//     (scalability class × platform): 12-core and 32-core machines give
//     four experts (Fig 5), a finer split by memory intensity gives eight
//     (§8.4), and pooling everything gives the monolithic model (§7.7).
package training

import (
	"context"
	"fmt"
	"math"
	"sort"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/parallel"
	"moe/internal/regress"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// LabeledSample is one training observation.
type LabeledSample struct {
	Features features.Vector
	// BestThreads is the oracle-optimal thread count at this state.
	BestThreads float64
	// Speedups[i] is the measured speedup of running with i+1 threads at
	// this state, normalized to one thread — the label of the paper's
	// speedup model x(n, f) (§4.1).
	Speedups []float64
	// NextEnv is the environment observed at the following control point,
	// the target of the environment predictor.
	NextEnv features.Env
	// Program is the target program the sample came from (leave-one-out
	// cross-validation groups by this, §5.2.3).
	Program string
	// PlatformCores identifies the training platform.
	PlatformCores int
	// Scalable is the target's P/4 classification on that platform.
	Scalable bool
	// MemIntensity is the target's average memory intensity (the §8.4
	// finer split key).
	MemIntensity float64
}

// DataSet is a collection of labelled samples.
type DataSet struct {
	Samples []LabeledSample
}

// Config controls training-data generation.
type Config struct {
	// Platforms to train on; nil selects the paper's pair (12- and
	// 32-core machines, §5.1).
	Platforms []sim.MachineConfig
	// Programs eligible as targets and workloads; nil selects the NAS
	// programs only (§5.2.1).
	Programs []*workload.Program
	// WorkloadsPerTarget pairs each target with this many distinct
	// workload programs (default 2).
	WorkloadsPerTarget int
	// Duration of each training run in virtual seconds (default 90).
	Duration float64
	// MaxCoRunners caps how many workload instances co-execute in a
	// training run; runs cycle through 1..MaxCoRunners instances. The
	// paper trains with a single workload program (§5.2.1); a cap of 3
	// (the default) additionally covers mildly multiprogrammed
	// environments while leaving the large evaluation workloads (6–7
	// programs) genuinely unseen.
	MaxCoRunners int
	// Seed drives all randomness (thread exploration, hardware churn).
	Seed uint64
	// Workers bounds how many training scenarios simulate concurrently:
	// 0 uses GOMAXPROCS, 1 runs serially. Every run's RNGs are split off
	// the root seed serially before the fan-out, so the generated dataset
	// is byte-identical for every worker count.
	Workers int
	// Stepping selects the simulation engine for the training runs. The
	// zero value is the fixed-dt reference (keeping zero-config datasets
	// byte-identical across releases); cmd/moetrain defaults its
	// -stepping flag to the event-horizon engine.
	Stepping sim.SteppingMode
}

func (c Config) withDefaults() (Config, error) {
	if c.Platforms == nil {
		c.Platforms = []sim.MachineConfig{sim.Train12(), sim.Eval32()}
	}
	if c.Programs == nil {
		for _, p := range workload.Catalog() {
			if p.Suite == workload.NAS {
				c.Programs = append(c.Programs, p)
			}
		}
	}
	if len(c.Programs) < 2 {
		return c, fmt.Errorf("training: need at least two programs, got %d", len(c.Programs))
	}
	if c.WorkloadsPerTarget <= 0 {
		c.WorkloadsPerTarget = 7
	}
	if c.Duration <= 0 {
		c.Duration = 90
	}
	if c.MaxCoRunners <= 0 {
		c.MaxCoRunners = 3
	}
	if c.Seed == 0 {
		c.Seed = 0x7ea1
	}
	return c, nil
}

// Scalability reports the paper's P/4 classification for a program on a
// machine: speedup of P threads over 1 thread on an otherwise idle system.
type Scalability struct {
	Program  string
	Cores    int
	Speedup  float64
	Scalable bool
}

// ClassifyScalability measures prog alone on the machine with 1 and with
// P threads and applies the P/4 rule (§5.1).
func ClassifyScalability(prog *workload.Program, machine sim.MachineConfig) (Scalability, error) {
	run := func(n int) (float64, error) {
		p := prog.Clone()
		res, err := sim.Run(sim.Scenario{
			// A solo static run is maximally quiet, so the event
			// engine classifies in a handful of leaps; ExecTime
			// matches the reference within 1e-9, far below the P/4
			// rule's margins.
			Stepping: sim.SteppingEvent,
			Machine:  machine,
			Programs: []sim.ProgramSpec{
				{Program: p, Policy: sim.FixedThreads(n), Target: true},
			},
			MaxTime: 1e6,
		})
		if err != nil {
			return 0, err
		}
		tr, err := res.Target()
		if err != nil {
			return 0, err
		}
		if !tr.Finished {
			return 0, fmt.Errorf("training: %s did not finish with %d threads", prog.Name, n)
		}
		return tr.ExecTime, nil
	}
	t1, err := run(1)
	if err != nil {
		return Scalability{}, err
	}
	tp, err := run(machine.Cores)
	if err != nil {
		return Scalability{}, err
	}
	sp := t1 / tp
	return Scalability{
		Program:  prog.Name,
		Cores:    machine.Cores,
		Speedup:  sp,
		Scalable: sp >= float64(machine.Cores)/4,
	}, nil
}

// explorer is the training-time *workload* policy: it draws a fresh uniform
// thread count periodically so the training data covers the load space (the
// paper's training runs "are repeated by varying the number of threads for
// both programs", §5.2.1). Over reaches beyond the core count so the models
// see oversubscribed environments like the ones multi-program evaluation
// workloads create.
type explorer struct {
	rng    *trace.RNG
	over   float64 // max threads as a multiple of the machine cores
	redraw float64 // per-decision probability of a fresh draw (default 0.3)
	n      int
}

func (e *explorer) Name() string { return "explorer" }

func (e *explorer) Decide(d sim.Decision) int {
	over := e.over
	if over < 1 {
		over = 1
	}
	redraw := e.redraw
	if redraw <= 0 {
		redraw = 0.3
	}
	// Re-draw occasionally; thread counts persist long enough for the
	// environment metrics to settle around them.
	if e.n == 0 || e.rng.Float64() < redraw {
		e.n = e.rng.IntRange(1, int(float64(d.MaxThreads)*over))
	}
	return e.n
}

// epsOracle drives the training *target*: mostly the ground-truth best
// thread count (so the recorded environment reflects a well-mapped program
// of its scalability class — the on-policy behaviour that correlates each
// expert's environment predictor with its thread predictor, §4.1), with an
// exploration fraction of random thread counts so the thread predictor also
// sees off-optimum states.
type epsOracle struct {
	rng *trace.RNG
	eps float64
	n   int
	exp bool
}

func (e *epsOracle) Name() string { return "eps-oracle" }

// Decide implements sim.Policy (fallback outside the engine).
func (e *epsOracle) Decide(d sim.Decision) int { return d.AvailableProcs }

// DecideWithOracle implements sim.OracleAware.
func (e *epsOracle) DecideWithOracle(d sim.Decision, oracleN int) int {
	if e.n == 0 || d.RegionStart || e.rng.Float64() < 0.3 {
		e.exp = e.rng.Float64() < e.eps
		e.n = e.rng.IntRange(1, d.MaxThreads)
	}
	if e.exp {
		return e.n
	}
	return oracleN
}

// trainingRun is one pre-planned training scenario: a (target, workload
// round) pair together with every RNG it will consume. The RNGs are split
// off the root generator serially, in the exact order the serial
// implementation drew them, so executing runs concurrently afterwards
// cannot change any stream — the dataset is byte-identical for every
// worker count.
type trainingRun struct {
	ti, w     int
	hwRNG     *trace.RNG   // hardware churn trace
	targetRNG *trace.RNG   // the target's epsilon-oracle exploration
	wlRNGs    []*trace.RNG // one per co-running workload instance
}

// Generate produces a labelled dataset by running exploration scenarios on
// every configured platform. Independent scenarios execute on up to
// cfg.Workers goroutines; samples are concatenated in run order.
func Generate(cfg Config) (*DataSet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := trace.NewRNG(cfg.Seed)
	pool := parallel.NewPool(cfg.Workers)
	ctx := context.Background()
	ds := &DataSet{}

	for _, machine := range cfg.Platforms {
		machine := machine
		// Pre-classify scalability per platform (also reused as the
		// sample annotation). The paper's P/4 rule (§5.1) applies
		// first; if it throws every program into one class on a
		// platform — which would leave an expert with no training data
		// — the split falls back to the median speedup, in the spirit
		// of the paper's explicitly "arbitrary approach" to allocating
		// training data across experts. Classification runs are
		// deterministic (no RNG), so they fan out freely.
		classes, err := parallel.Map(ctx, pool, len(cfg.Programs), func(_ context.Context, i int) (Scalability, error) {
			return ClassifyScalability(cfg.Programs[i], machine)
		})
		if err != nil {
			return nil, err
		}
		speedups := make(map[string]float64, len(cfg.Programs))
		scalable := make(map[string]bool, len(cfg.Programs))
		anyScalable, anyNot := false, false
		for _, sc := range classes {
			speedups[sc.Program] = sc.Speedup
			scalable[sc.Program] = sc.Scalable
			if sc.Scalable {
				anyScalable = true
			} else {
				anyNot = true
			}
		}
		if !anyScalable || !anyNot {
			vals := make([]float64, 0, len(speedups))
			for _, v := range speedups {
				vals = append(vals, v)
			}
			med, err := stats.Median(vals)
			if err != nil {
				return nil, err
			}
			for name, v := range speedups {
				scalable[name] = v > med
			}
		}

		// Plan every run and split its RNGs serially: per run the serial
		// order is hardware, then the target's oracle policy, then one
		// split per co-runner (the explorer split happens even for
		// instances that end up under the default policy, mirroring the
		// original draw order exactly).
		var runs []trainingRun
		for ti := range cfg.Programs {
			for w := 0; w < cfg.WorkloadsPerTarget; w++ {
				r := trainingRun{ti: ti, w: w, hwRNG: rng.Split(), targetRNG: rng.Split()}
				// Cycle 1..MaxCoRunners co-runners, with the final
				// run per target isolated so the clean scaling
				// behaviour (§7.1's static case) is also seen.
				instances := 1 + w%cfg.MaxCoRunners
				if w == cfg.WorkloadsPerTarget-1 {
					instances = 0
				}
				for j := 0; j < instances; j++ {
					r.wlRNGs = append(r.wlRNGs, rng.Split())
				}
				runs = append(runs, r)
			}
		}
		perRun, err := parallel.Map(ctx, pool, len(runs), func(_ context.Context, i int) ([]LabeledSample, error) {
			return generateRun(cfg, machine, scalable, runs[i])
		})
		if err != nil {
			return nil, err
		}
		for _, samples := range perRun {
			ds.Samples = append(ds.Samples, samples...)
		}
	}
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("training: generated no samples")
	}
	return ds, nil
}

// generateRun executes one planned training scenario and labels its
// samples. It touches only its own run's state (cloned programs, private
// RNGs, a value copy of the machine config) plus the read-only scalable
// map, so any number of runs may execute concurrently.
func generateRun(cfg Config, machine sim.MachineConfig, scalable map[string]bool, run trainingRun) ([]LabeledSample, error) {
	target := cfg.Programs[run.ti]
	hw, err := trace.GenerateHardware(run.hwRNG, machine.Cores, trace.LowFrequency, cfg.Duration)
	if err != nil {
		return nil, err
	}
	m := machine
	m.Hardware = hw

	// One target plus a small number of workload instances per training
	// run, cycling 1..MaxCoRunners across runs. Each workload alternates
	// between the OpenMP default policy (the deployment regime) and
	// thread exploration reaching past the core count ("varying the
	// number of threads for both programs", §5.2.1), so the models see
	// oversubscription — but the extreme multi-program loads of the
	// large evaluation workloads remain genuinely unseen environments
	// (§7.2).
	specs := []sim.ProgramSpec{
		{Program: target.Clone(), Policy: &epsOracle{rng: run.targetRNG, eps: 0.25}, Target: true},
	}
	for j, wrng := range run.wlRNGs {
		// Deterministic distinct workload choice.
		wi := (run.ti + 1 + run.w*3 + j*5) % len(cfg.Programs)
		if wi == run.ti {
			wi = (wi + 1) % len(cfg.Programs)
		}
		var wlPolicy sim.Policy = &explorer{rng: wrng, over: 2, redraw: 0.1}
		if (run.w+j)%2 == 0 {
			wlPolicy = sim.Func{PolicyName: "default", DecideFn: func(d sim.Decision) int {
				return d.AvailableProcs
			}}
		}
		specs = append(specs, sim.ProgramSpec{
			Program: cfg.Programs[wi].Clone(),
			Policy:  wlPolicy,
			Loop:    true,
		})
	}

	res, err := sim.Run(sim.Scenario{
		Stepping:      cfg.Stepping,
		Machine:       m,
		Programs:      specs,
		MaxTime:       cfg.Duration,
		RecordSamples: true,
		RecordOracle:  true,
	})
	if err != nil {
		return nil, err
	}
	tr, err := res.Target()
	if err != nil {
		return nil, err
	}
	out := make([]LabeledSample, 0, len(tr.Samples))
	for i := 0; i+1 < len(tr.Samples); i++ {
		s := tr.Samples[i]
		var speedups []float64
		if len(s.RateCurve) > 0 && s.RateCurve[0] > 0 {
			speedups = make([]float64, len(s.RateCurve))
			for j, r := range s.RateCurve {
				speedups[j] = r / s.RateCurve[0]
			}
		}
		out = append(out, LabeledSample{
			Features:      s.Features,
			BestThreads:   float64(s.OracleN),
			Speedups:      speedups,
			NextEnv:       tr.Samples[i+1].Features.EnvPart(),
			Program:       target.Name,
			PlatformCores: machine.Cores,
			Scalable:      scalable[target.Name],
			MemIntensity:  target.AvgMemIntensity(),
		})
	}
	return out, nil
}

// ExcludeProgram returns the dataset without samples generated from the
// named target, implementing the paper's leave-one-out deployment rule
// (§5.2.3: when predicting for program bt, bt is not in the training set).
// Programs outside the training suite pass through unchanged.
func (ds *DataSet) ExcludeProgram(name string) *DataSet {
	return ds.Filter(func(s LabeledSample) bool { return s.Program != name })
}

// Filter returns the subset of samples for which keep is true.
func (ds *DataSet) Filter(keep func(LabeledSample) bool) *DataSet {
	out := &DataSet{}
	for _, s := range ds.Samples {
		if keep(s) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Split partitions the samples by an arbitrary key.
func (ds *DataSet) Split(key func(LabeledSample) string) map[string]*DataSet {
	out := make(map[string]*DataSet)
	for _, s := range ds.Samples {
		k := key(s)
		if out[k] == nil {
			out[k] = &DataSet{}
		}
		out[k].Samples = append(out[k].Samples, s)
	}
	return out
}

// threadSamples converts to regression samples for the thread predictor.
func (ds *DataSet) threadSamples() []regress.Sample {
	out := make([]regress.Sample, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = regress.Sample{X: s.Features.Slice(), Y: s.BestThreads}
	}
	return out
}

// envValue extracts one environment dimension from a sample's NextEnv;
// dim indexes the environment features from features.EnvStart.
func envValue(e features.Env, dim int) float64 {
	switch dim + features.EnvStart {
	case features.WorkloadThreads:
		return e.WorkloadThreads
	case features.Processors:
		return e.Processors
	case features.RunQueueSize:
		return e.RunQueue
	case features.CPULoad1:
		return e.Load1
	case features.CPULoad5:
		return e.Load5
	case features.CachedMemory:
		return e.CachedMem
	default:
		return e.PageFreeRate
	}
}

// envSamples converts to regression samples for one dimension of the
// environment predictor.
func (ds *DataSet) envSamples(dim int) []regress.Sample {
	out := make([]regress.Sample, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = regress.Sample{X: s.Features.Slice(), Y: envValue(s.NextEnv, dim)}
	}
	return out
}

// envNormSamples converts to regression samples with the next environment
// norm as target — used for cross-validation reporting and for norm-style
// (Table 1 shaped) environment models.
func (ds *DataSet) envNormSamples() []regress.Sample {
	out := make([]regress.Sample, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = regress.Sample{X: s.Features.Slice(), Y: s.NextEnv.Norm()}
	}
	return out
}

// FitExpert fits one expert's predictor pair on the dataset: the thread
// predictor w on oracle-best thread counts and the vector environment
// predictor m, one linear model per environment dimension.
func FitExpert(name string, ds *DataSet, maxThreads int, trainedOn string) (*expert.Expert, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("training: expert %s has no training data", name)
	}
	w, err := regress.Fit(ds.threadSamples(), regress.Options{Ridge: 1e-6})
	if err != nil {
		return nil, fmt.Errorf("training: fitting %s thread predictor: %w", name, err)
	}

	// Speedup surface x(n, f) (§4.1): sample a subset of thread counts
	// per state so the design stays balanced.
	var speedupSamples []regress.Sample
	for _, s := range ds.Samples {
		for j := 0; j < len(s.Speedups); j++ {
			// Every 2nd count plus the extremes keeps ~17 points per
			// curve on a 32-core machine.
			if j != 0 && j != len(s.Speedups)-1 && j%2 != 0 {
				continue
			}
			speedupSamples = append(speedupSamples, regress.Sample{
				X: expert.SpeedupBasis(s.Features, j+1),
				Y: s.Speedups[j],
			})
		}
	}
	var xm *expert.SpeedupModel
	if len(speedupSamples) > 0 {
		m, err := regress.Fit(speedupSamples, regress.Options{Ridge: 1e-6})
		if err != nil {
			return nil, fmt.Errorf("training: fitting %s speedup model: %w", name, err)
		}
		xm = &expert.SpeedupModel{Model: m}
	}
	var env expert.VectorEnvModel
	for dim := 0; dim < features.EnvDim; dim++ {
		samples := ds.envSamples(dim)
		m, err := regress.Fit(samples, regress.Options{Ridge: 1e-6})
		if err != nil {
			return nil, fmt.Errorf("training: fitting %s environment predictor dim %d: %w", name, dim, err)
		}
		env.Models[dim] = m
		// Training residual scale for the likelihood gating.
		var sumSq float64
		for _, s := range samples {
			r := m.MustPredict(s.X) - s.Y
			sumSq += r * r
		}
		env.Sigma[dim] = math.Sqrt(sumSq / float64(len(samples)))
	}
	e := &expert.Expert{Name: name, Threads: w, Speedup: xm, Env: env, MaxThreads: maxThreads, TrainedOn: trainedOn}
	// Feature statistics for the out-of-distribution blend.
	n := float64(len(ds.Samples))
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			e.FeatMean[i] += s.Features[i]
		}
	}
	for i := range e.FeatMean {
		e.FeatMean[i] /= n
	}
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			d := s.Features[i] - e.FeatMean[i]
			e.FeatStd[i] += d * d
		}
	}
	for i := range e.FeatStd {
		e.FeatStd[i] = math.Sqrt(e.FeatStd[i] / n)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// BuildExperts4 constructs the paper's four experts (Fig 5): scalable and
// non-scalable program sets, each on both platforms. Expert order follows
// the paper's numbering as reflected in Fig 17 (E1 predicts the largest
// thread numbers — scalable programs on the large machine — and E4 the
// smallest).
func BuildExperts4(ds *DataSet) (expert.Set, error) {
	cores := platformCores(ds)
	if len(cores) != 2 {
		return nil, fmt.Errorf("training: four-expert split needs two platforms, dataset has %d", len(cores))
	}
	big, small := cores[1], cores[0]
	specs := []struct {
		name     string
		scalable bool
		cores    int
	}{
		{"E1", true, big},
		{"E2", true, small},
		{"E3", false, big},
		{"E4", false, small},
	}
	var set expert.Set
	for _, sp := range specs {
		sub := ds.Filter(func(s LabeledSample) bool {
			return s.Scalable == sp.scalable && s.PlatformCores == sp.cores
		})
		if len(sub.Samples) == 0 {
			// The slice can empty out under leave-one-out when a
			// scalability class has a single program on a platform;
			// fall back to the class across platforms so the expert
			// still exists (the selector will rarely pick it).
			sub = ds.Filter(func(s LabeledSample) bool { return s.Scalable == sp.scalable })
		}
		label := fmt.Sprintf("%s programs, %d-core platform", scalabilityLabel(sp.scalable), sp.cores)
		e, err := FitExpert(sp.name, sub, sp.cores, label)
		if err != nil {
			return nil, err
		}
		set = append(set, e)
	}
	return set, set.Validate()
}

// BuildExperts8 constructs the §8.4 finer-granularity pool: each of the
// four (scalability × platform) slices is further split at its median
// memory intensity — "further splitting the training programs based on
// scaling behavior".
func BuildExperts8(ds *DataSet) (expert.Set, error) {
	cores := platformCores(ds)
	if len(cores) != 2 {
		return nil, fmt.Errorf("training: eight-expert split needs two platforms, dataset has %d", len(cores))
	}
	big, small := cores[1], cores[0]
	var set expert.Set
	idx := 1
	for _, sc := range []bool{true, false} {
		for _, c := range []int{big, small} {
			sub := ds.Filter(func(s LabeledSample) bool {
				return s.Scalable == sc && s.PlatformCores == c
			})
			if len(sub.Samples) == 0 {
				// Same leave-one-out fallback as BuildExperts4: widen
				// to the scalability class across platforms.
				sub = ds.Filter(func(s LabeledSample) bool { return s.Scalable == sc })
			}
			med := medianMemIntensity(sub)
			// A finer expert needs enough data to fit its 18-basis
			// speedup surface and 7 environment models; below this
			// floor the sub-expert inherits the parent slice instead
			// of fitting garbage.
			const minSliceSamples = 250
			for half, keepLow := range []bool{true, false} {
				part := sub.Filter(func(s LabeledSample) bool {
					if keepLow {
						return s.MemIntensity <= med
					}
					return s.MemIntensity > med
				})
				if len(part.Samples) < minSliceSamples {
					// Degenerate split (all programs share one
					// intensity, or leave-one-out emptied the
					// half); reuse the whole slice.
					part = sub
				}
				label := fmt.Sprintf("%s/%s-memory programs, %d-core platform",
					scalabilityLabel(sc), []string{"low", "high"}[half], c)
				e, err := FitExpert(fmt.Sprintf("E%d", idx), part, c, label)
				if err != nil {
					return nil, err
				}
				set = append(set, e)
				idx++
			}
		}
	}
	return set, set.Validate()
}

// BuildMonolithic pools all training data into one model — the single
// aggregate model of §7.7 ("one generic model composed of individual
// experts", trained on the same total data).
func BuildMonolithic(ds *DataSet) (*expert.Expert, error) {
	return FitExpert("monolithic", ds, maxCores(ds), "all training data")
}

// BuildExperts2 constructs the two-expert configuration of the motivation
// section (§3): both trained for the large platform, split by scalability,
// so E1 "is more sensitive to changes in the number of processors" than E2.
func BuildExperts2(ds *DataSet) (expert.Set, error) {
	big := maxCores(ds)
	var set expert.Set
	for i, sc := range []bool{true, false} {
		sub := ds.Filter(func(s LabeledSample) bool { return s.Scalable == sc })
		e, err := FitExpert(fmt.Sprintf("E%d", i+1), sub, big,
			fmt.Sprintf("%s programs, both platforms", scalabilityLabel(sc)))
		if err != nil {
			return nil, err
		}
		set = append(set, e)
	}
	return set, set.Validate()
}

func scalabilityLabel(s bool) string {
	if s {
		return "scalable"
	}
	return "non-scalable"
}

// platformCores returns the distinct platform core counts, ascending.
func platformCores(ds *DataSet) []int {
	seen := map[int]bool{}
	for _, s := range ds.Samples {
		seen[s.PlatformCores] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func maxCores(ds *DataSet) int {
	maxC := 0
	for _, s := range ds.Samples {
		if s.PlatformCores > maxC {
			maxC = s.PlatformCores
		}
	}
	return maxC
}

func medianMemIntensity(ds *DataSet) float64 {
	if len(ds.Samples) == 0 {
		return 0
	}
	vals := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		vals[i] = s.MemIntensity
	}
	med, err := stats.Median(vals)
	if err != nil {
		return 0
	}
	return med
}
