package core

import (
	"reflect"
	"testing"

	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/telemetry"
	"moe/internal/trace"
	"moe/internal/workload"
)

// goldenThreads pins the mixture's per-step thread decisions for a fixed
// scenario: lu (canonical Table 1 experts) co-running with a looping mg on
// the 32-core evaluation machine, low-frequency hardware changes, seed 77.
// Any change to the engine, the experts, the selector or the seed
// derivation that alters even one decision fails this test — the
// regression guard behind the "same seed, same run" reproducibility claim
// (§6.4) and the workers=N determinism guarantee built on top of it.
var goldenThreads = []int{
	29, 26, 27, 27, 27, 27, 28, 28, 28, 28, 28, 29, 29, 29, 29, 30, 30,
	29, 30, 30, 29, 30, 30, 30, 30, 30, 30, 30, 30, 31, 30, 30, 30, 30,
	30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30,
	30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 29, 29,
	29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 30, 29, 29, 29, 29, 29, 29,
	29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 28, 29, 29, 29, 29, 29,
	27, 27, 27, 27, 26, 27, 27, 27, 27, 27, 27, 27, 27, 27, 27, 27, 27,
	26, 27, 27, 27, 27, 27, 26, 26,
}

func goldenScenario(t *testing.T) (*Mixture, sim.Scenario) {
	t.Helper()
	return goldenScenarioOpts(t, Options{})
}

func goldenScenarioOpts(t *testing.T, opts Options) (*Mixture, sim.Scenario) {
	t.Helper()
	mix, err := NewMixture(expert.Canonical4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ByName("mg")
	if err != nil {
		t.Fatal(err)
	}
	machine := sim.Eval32()
	hw, err := trace.GenerateHardware(trace.NewRNG(77), machine.Cores, trace.LowFrequency, 25)
	if err != nil {
		t.Fatal(err)
	}
	machine.Hardware = hw
	return mix, sim.Scenario{
		Machine: machine,
		Programs: []sim.ProgramSpec{
			{Program: target.Clone(), Policy: mix, Target: true},
			{Program: wl.Clone(), Policy: policy.NewDefault(), Loop: true},
		},
		MaxTime:       25,
		RecordSamples: true,
		Seed:          77,
	}
}

func TestGoldenTrace(t *testing.T) {
	mix, scenario := goldenScenario(t)
	res, err := sim.Run(scenario)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecisionCount != len(goldenThreads) {
		t.Fatalf("decisions = %d, want %d", tr.DecisionCount, len(goldenThreads))
	}
	if len(tr.Samples) != len(goldenThreads) {
		t.Fatalf("samples = %d, want %d", len(tr.Samples), len(goldenThreads))
	}
	for i, s := range tr.Samples {
		if s.Threads != goldenThreads[i] {
			t.Errorf("step %d (t=%.1f): threads = %d, want %d", i, s.Time, s.Threads, goldenThreads[i])
		}
	}
	// The selector's behaviour is pinned too: on this scenario the
	// canonical mixture settles on E4 with a brief E1 excursion.
	st := mix.Snapshot()
	if got, want := st.SelectionFraction[3], 0.9921259842519685; got != want {
		t.Errorf("E4 selection fraction = %v, want %v", got, want)
	}
	if got, want := st.SelectionFraction[0], 0.007874015748031496; got != want {
		t.Errorf("E1 selection fraction = %v, want %v", got, want)
	}
}

// TestGoldenTraceWithDecisionDetail re-runs the golden scenario with
// telemetry detail enabled and demands the identical decision sequence:
// detail capture observes the decision path, it must never steer it.
func TestGoldenTraceWithDecisionDetail(t *testing.T) {
	mix, scenario := goldenScenario(t)
	mix.EnableDecisionDetail()
	res, err := sim.Run(scenario)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecisionCount != len(goldenThreads) {
		t.Fatalf("decisions = %d, want %d", tr.DecisionCount, len(goldenThreads))
	}
	for i, s := range tr.Samples {
		if s.Threads != goldenThreads[i] {
			t.Errorf("step %d: threads = %d, want %d with detail on", i, s.Threads, goldenThreads[i])
		}
	}
	st := mix.Snapshot()
	if got, want := st.SelectionFraction[3], 0.9921259842519685; got != want {
		t.Errorf("E4 selection fraction = %v, want %v", got, want)
	}
	// And the detail itself reflects the settled selection: the final
	// decision was served by an expert through the selector rung.
	var rec telemetry.Record
	if !mix.DecisionDetail(&rec) {
		t.Fatal("detail enabled but unavailable")
	}
	if rec.SelectedExpert < 0 || rec.FallbackRung != "selector" {
		t.Errorf("final decision detail: expert %d, rung %q", rec.SelectedExpert, rec.FallbackRung)
	}
	if len(rec.GatingErrors) != 4 {
		t.Errorf("gating errors = %v, want one per expert", rec.GatingErrors)
	}
}

// TestGoldenTraceZeroEvolution pins the tentpole's compatibility promise: a
// mixture built with a zero-valued Evolution config (disabled lifecycle) is
// the frozen mixture — the golden decision trace and the exported state are
// both unchanged.
func TestGoldenTraceZeroEvolution(t *testing.T) {
	mix, scenario := goldenScenarioOpts(t, Options{Evolution: evolve.Config{}})
	res, err := sim.Run(scenario)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecisionCount != len(goldenThreads) {
		t.Fatalf("decisions = %d, want %d", tr.DecisionCount, len(goldenThreads))
	}
	for i, s := range tr.Samples {
		if s.Threads != goldenThreads[i] {
			t.Errorf("step %d: threads = %d, want %d with zero evolution config", i, s.Threads, goldenThreads[i])
		}
	}
	st, err := mix.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evolution != nil {
		t.Error("disabled evolution leaked state into the export")
	}
}

// TestGoldenTraceEvolvingReplays runs the golden scenario with the
// lifecycle ENABLED, twice, and demands bit-identical traces: evolution's
// only randomness is its seeded emitter stream, so an evolving run is as
// replayable as a frozen one.
func TestGoldenTraceEvolvingReplays(t *testing.T) {
	run := func() (*Mixture, []int) {
		mix, scenario := goldenScenarioOpts(t, Options{
			Evolution: evolve.Config{Enabled: true, Period: 20, Seed: 9},
		})
		res, err := sim.Run(scenario)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := res.Target()
		if err != nil {
			t.Fatal(err)
		}
		threads := make([]int, 0, len(tr.Samples))
		for _, s := range tr.Samples {
			threads = append(threads, s.Threads)
		}
		return mix, threads
	}
	m1, t1 := run()
	m2, t2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("evolving replay diverged at step %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	s1, err := m1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("evolving replays exported different state")
	}
}

// TestGoldenTraceReplays re-runs the golden scenario twice in one process
// and demands bit-identical results — the engine must be a pure function
// of the scenario.
func TestGoldenTraceReplays(t *testing.T) {
	_, s1 := goldenScenario(t)
	_, s2 := goldenScenario(t)
	r1, err := sim.Run(s1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := r1.Target()
	t2, _ := r2.Target()
	if t1.ExecTime != t2.ExecTime || t1.WorkDone != t2.WorkDone {
		t.Errorf("replay diverged: exec %v vs %v, work %v vs %v",
			t1.ExecTime, t2.ExecTime, t1.WorkDone, t2.WorkDone)
	}
	for i := range t1.Samples {
		if t1.Samples[i].Threads != t2.Samples[i].Threads {
			t.Errorf("replay diverged at step %d", i)
		}
	}
}
