package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/workload"
)

// benchScenario mirrors internal/sim's canonical stepping-loop workload:
// three catalog programs looping on the 32-core evaluation machine under
// low-frequency hardware churn.
func benchScenario(maxTime float64, mode sim.SteppingMode) (sim.Scenario, error) {
	machine := sim.Eval32()
	hw, err := trace.GenerateHardware(trace.NewRNG(7), machine.Cores, trace.LowFrequency, 1e6)
	if err != nil {
		return sim.Scenario{}, err
	}
	machine.Hardware = hw
	var specs []sim.ProgramSpec
	for i, name := range []string{"lu", "mg", "cg"} {
		p, err := workload.ByName(name)
		if err != nil {
			return sim.Scenario{}, err
		}
		specs = append(specs, sim.ProgramSpec{Program: p.Clone(), Policy: sim.FixedThreads(8 + 4*i), Loop: true})
	}
	return sim.Scenario{Machine: machine, Programs: specs, MaxTime: maxTime, Stepping: mode}, nil
}

// benchMeasurement is one benchmark's result in the committed JSON.
type benchMeasurement struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	ScenariosSec float64 `json:"scenarios_per_sec"`
}

// stepLoopMeasurement isolates the steady-state stepping loop by a
// two-point measurement: the difference between a 200-virtual-second and a
// 100-virtual-second run is exactly 1000 extra steps of warm loop, with
// setup (engine build, hardware schedule) cancelled out. The same
// derivation applied to any engine build makes numbers comparable across
// revisions.
type stepLoopMeasurement struct {
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

type benchReport struct {
	Description string `json:"description"`
	// Run* are end-to-end sim.Run over 100 virtual seconds (1000 steps at
	// the default DT) of the canonical three-program churn scenario.
	RunFixed100s benchMeasurement `json:"run_fixed_100s"`
	RunEvent100s benchMeasurement `json:"run_event_100s"`
	// StepLoop* are the two-point steady-state loop costs.
	StepLoopFixed stepLoopMeasurement `json:"step_loop_fixed"`
	StepLoopEvent stepLoopMeasurement `json:"step_loop_event"`
	// Baseline records the pre-event-engine implementation measured with
	// the identical two-point harness, for the speedup ratio below.
	Baseline struct {
		NsPerStep     float64 `json:"ns_per_step"`
		AllocsPerStep float64 `json:"allocs_per_step"`
		Commit        string  `json:"commit"`
	} `json:"baseline_prev_engine"`
	SpeedupFixedVsBaseline float64 `json:"speedup_fixed_vs_baseline"`
	SpeedupEventVsBaseline float64 `json:"speedup_event_vs_baseline"`
}

// benchRepeats is how many times each point is benchmarked; the minimum
// ns/op across repeats is reported. Minimum-of-N is the usual way to pin a
// baseline on a noisy shared machine: scheduling interference only ever
// adds time, so the minimum is the best estimate of the true cost.
const benchRepeats = 5

func runBench(mode sim.SteppingMode, maxTime float64) (testing.BenchmarkResult, error) {
	s, err := benchScenario(maxTime, mode)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var best testing.BenchmarkResult
	for rep := 0; rep < benchRepeats; rep++ {
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(s); err != nil {
					runErr = err
					b.Fatal(err)
				}
			}
		})
		if runErr != nil {
			return testing.BenchmarkResult{}, runErr
		}
		if rep == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best, nil
}

func measure(mode sim.SteppingMode) (benchMeasurement, stepLoopMeasurement, error) {
	r100, err := runBench(mode, 100)
	if err != nil {
		return benchMeasurement{}, stepLoopMeasurement{}, err
	}
	r200, err := runBench(mode, 200)
	if err != nil {
		return benchMeasurement{}, stepLoopMeasurement{}, err
	}
	ns := float64(r100.NsPerOp())
	m := benchMeasurement{
		NsPerOp:      ns,
		AllocsPerOp:  r100.AllocsPerOp(),
		BytesPerOp:   r100.AllocedBytesPerOp(),
		ScenariosSec: 1e9 / ns,
	}
	const extraSteps = 1000 // 100 virtual seconds at the default 0.1s DT
	sl := stepLoopMeasurement{
		NsPerStep:     (float64(r200.NsPerOp()) - ns) / extraSteps,
		AllocsPerStep: float64(r200.AllocsPerOp()-r100.AllocsPerOp()) / extraSteps,
	}
	return m, sl, nil
}

// writeBenchJSON measures both engines and writes the committed benchmark
// baseline (BENCH_PR5.json). The pre-event-engine numbers were measured
// once with this same two-point harness against the prior engine and are
// carried as constants so the speedup ratios stay visible in the artifact.
func writeBenchJSON(path string) error {
	rep := benchReport{
		Description: "canonical 3-program churn scenario on the 32-core evaluation machine; step costs from the (200s-100s)/1000-step two-point derivation",
	}
	rep.Baseline.NsPerStep = 850
	rep.Baseline.AllocsPerStep = 7.6
	rep.Baseline.Commit = "7bb4a68"

	var err error
	if rep.RunFixed100s, rep.StepLoopFixed, err = measure(sim.SteppingFixed); err != nil {
		return err
	}
	if rep.RunEvent100s, rep.StepLoopEvent, err = measure(sim.SteppingEvent); err != nil {
		return err
	}
	rep.SpeedupFixedVsBaseline = rep.Baseline.NsPerStep / rep.StepLoopFixed.NsPerStep
	rep.SpeedupEventVsBaseline = rep.Baseline.NsPerStep / rep.StepLoopEvent.NsPerStep

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: step loop fixed %.0f ns (%.1fx), event %.0f ns (%.1fx), wrote %s\n",
		rep.StepLoopFixed.NsPerStep, rep.SpeedupFixedVsBaseline,
		rep.StepLoopEvent.NsPerStep, rep.SpeedupEventVsBaseline, path)
	return nil
}
