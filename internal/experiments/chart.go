package experiments

import (
	"fmt"
	"strings"
)

// ASCII bar rendering for experiment tables, so `moebench -chart` shows the
// figures as figures. One bar per (row, column) value, scaled to the
// table's maximum.

// chartWidth is the bar length of the largest value.
const chartWidth = 48

// Chart renders the table as horizontal bars. Values are assumed
// non-negative (speedups, fractions); negative values render as empty bars
// with the numeric value still printed.
func (t *Table) Chart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)

	maxVal := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	labelW := 10
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := 8
	for _, c := range t.Columns {
		if len(c) > colW {
			colW = len(c)
		}
	}

	for _, r := range t.Rows {
		for i, v := range r.Values {
			col := ""
			if i < len(t.Columns) {
				col = t.Columns[i]
			}
			label := ""
			if i == 0 {
				label = r.Label
			}
			bar := 0
			if v > 0 {
				bar = int(v / maxVal * chartWidth)
				if bar == 0 {
					bar = 1
				}
			}
			fmt.Fprintf(&b, "%-*s  %-*s %7.3f  %s\n", labelW, label, colW, col, v, strings.Repeat("█", bar))
		}
		if len(r.Values) > 1 {
			b.WriteByte('\n')
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Sparkline renders a numeric series as a compact unicode sparkline, used
// by the timeline tooling.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// TimelineSparklines summarizes Fig 2 timelines as one sparkline per
// policy plus the environment, a compact alternative to FormatTimeline.
func TimelineSparklines(points []TimelinePoint) string {
	if len(points) == 0 {
		return ""
	}
	var b strings.Builder
	series := func(extract func(TimelinePoint) float64) []float64 {
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = extract(p)
		}
		return out
	}
	fmt.Fprintf(&b, "%-12s %s\n", "procs", Sparkline(series(func(p TimelinePoint) float64 { return float64(p.Processors) })))
	fmt.Fprintf(&b, "%-12s %s\n", "wl-threads", Sparkline(series(func(p TimelinePoint) float64 { return float64(p.WorkloadThreads) })))
	for _, name := range []PolicyName{PolicyDefault, PolicyAnalytic, "expert1", "expert2", PolicyMixture} {
		n := name
		fmt.Fprintf(&b, "%-12s %s\n", n, Sparkline(series(func(p TimelinePoint) float64 { return float64(p.Threads[n]) })))
	}
	return b.String()
}
