package core

import (
	"fmt"
	"math"

	"moe/internal/features"
)

// HyperplaneSelector is the paper's expert selector (§5.3): the mixture
// model M is "a series of hyperplanes S in the 10-dimensional feature space
// f" that "define the regions in the feature space where one expert is more
// accurate than the others", learnt online so that within each region the
// owning expert's environment error is below the average error of the rest,
// using data from the last timestep only.
//
// The implementation realizes that partition as a multiclass linear
// classifier: each expert k carries a score hyperplane θ_k, a state f is
// owned by argmax_k θ_k·f̃, and the pairwise decision boundaries
// θ_i·f̃ = θ_j·f̃ are exactly the hyperplanes S separating the regions. On a
// misclassification — the owner of the last timestep's state was not the
// expert with the smallest environment error — a perceptron update moves
// the relevant boundaries to reclassify that one point (§5.4: "if there was
// a misprediction, the hyperplane S would be updated to reclassify this
// feature point"). Features are standardized online (running mean and
// variance) so hyperplane geometry is insensitive to the wildly different
// scales of thread counts, load averages and memory sizes.
type HyperplaneSelector struct {
	k      int
	rate   float64
	theta  [][]float64 // k hyperplanes over standardized features + bias
	mean   [features.Dim]float64
	m2     [features.Dim]float64
	count  float64
	misses int
	votes  int

	// Recent-accuracy bias: hyperplanes place experts by region, but an
	// expert whose predictions have been persistently poor lately is
	// demoted everywhere. errEMA tracks each expert's recent gating
	// error; scaleEMA tracks the across-expert mean so the penalty is
	// scale-free.
	errEMA   []float64
	errSeen  []bool
	scaleEMA float64
	penalty  float64

	// incumbent hysteresis: the currently selected expert keeps its
	// region unless a challenger clearly outscores it, so near-ties in a
	// stable environment do not cause thread-count flapping.
	incumbent int
}

// accuracyPenaltyWeight scales how strongly recent prediction error demotes
// an expert relative to the hyperplane score.
const accuracyPenaltyWeight = 1.5

// errEMADecay weights the newest error observation in the recent-accuracy
// EMAs.
const errEMADecay = 0.08

// switchMargin is the score advantage a challenger needs over the incumbent
// expert before the selection changes (hysteresis against flapping).
const switchMargin = 0.05

// DefaultLearningRate is the perceptron step used when the caller passes 0.
const DefaultLearningRate = 0.15

// NewHyperplaneSelector creates a selector for k experts. rate (0 → default)
// controls how far boundaries move on a misclassification.
func NewHyperplaneSelector(k int, rate float64) *HyperplaneSelector {
	if k < 1 {
		panic("core: selector needs at least one expert")
	}
	if rate <= 0 {
		rate = DefaultLearningRate
	}
	theta := make([][]float64, k)
	for i := range theta {
		theta[i] = make([]float64, features.Dim+1)
	}
	// Even initial partition (§5.3 "we initially partition the space
	// evenly"): all hyperplanes coincide at zero, so every expert ties
	// and ties break by index until the first updates arrive.
	return &HyperplaneSelector{
		k:         k,
		rate:      rate,
		theta:     theta,
		errEMA:    make([]float64, k),
		errSeen:   make([]bool, k),
		penalty:   accuracyPenaltyWeight,
		incumbent: -1,
	}
}

// Pretrain seeds the selector with offline-learnt hyperplanes and the
// feature statistics they were standardized against. This realizes the
// paper's combination of "offline prior models and online learning" (§1,
// contribution 3): the gating starts from the partition learnt on training
// data and keeps adapting online from environment-prediction errors.
// theta must be k rows of Dim+1 weights (bias last); mean/std are
// per-feature statistics of the training data.
func (h *HyperplaneSelector) Pretrain(theta [][]float64, mean, std [features.Dim]float64, weight float64) error {
	if len(theta) != h.k {
		return fmt.Errorf("core: pretrain with %d hyperplanes for %d experts", len(theta), h.k)
	}
	for i, row := range theta {
		if len(row) != features.Dim+1 {
			return fmt.Errorf("core: pretrain hyperplane %d has %d weights, want %d", i, len(row), features.Dim+1)
		}
		h.theta[i] = append([]float64(nil), row...)
	}
	if weight < 1 {
		weight = 1
	}
	h.count = weight
	h.mean = mean
	for i, sd := range std {
		// Welford state: m2 = var · (count−1).
		h.m2[i] = sd * sd * (weight - 1)
	}
	return nil
}

// Name implements Selector.
func (h *HyperplaneSelector) Name() string { return "hyperplane" }

// observe folds f into the running standardization statistics (Welford).
func (h *HyperplaneSelector) observe(f *features.Vector) {
	h.count++
	for i := 0; i < features.Dim; i++ {
		d := f[i] - h.mean[i]
		h.mean[i] += d / h.count
		h.m2[i] += d * (f[i] - h.mean[i])
	}
}

// standardizeClamp bounds standardized features so that a single feature
// far outside the training range cannot dominate hyperplane scores (robust
// standardization; unseen programs routinely have one extreme code
// feature).
const standardizeClamp = 2.5

// standardizeInto writes f̃ (with a trailing bias term) into x, which must
// have length ≥ Dim+1, and returns x[:Dim+1]. It is the allocation-free
// kernel behind every score computation; callers without scratch pass a
// fresh slice.
func (h *HyperplaneSelector) standardizeInto(f *features.Vector, x []float64) []float64 {
	x = x[:features.Dim+1]
	for i := 0; i < features.Dim; i++ {
		sd := 1.0
		if h.count > 1 {
			if v := h.m2[i] / (h.count - 1); v > 1e-12 {
				sd = math.Sqrt(v)
			}
		}
		z := (f[i] - h.mean[i]) / sd
		if z > standardizeClamp {
			z = standardizeClamp
		} else if z < -standardizeClamp {
			z = -standardizeClamp
		}
		x[i] = z
	}
	x[features.Dim] = 1
	return x
}

// sdInto computes the per-feature standard deviations standardizeInto would
// use — the exact same expression, including the count and variance guards —
// into sd (len ≥ Dim). The statistics only change in observe, so within one
// decision a single sdInto serves every standardization, sparing the
// per-dimension square roots standardizeInto pays on each call.
func (h *HyperplaneSelector) sdInto(sd []float64) {
	sd = sd[:features.Dim] // hoist the bound proof out of the loop
	for i := 0; i < features.Dim; i++ {
		s := 1.0
		if h.count > 1 {
			if v := h.m2[i] / (h.count - 1); v > 1e-12 {
				s = math.Sqrt(v)
			}
		}
		sd[i] = s
	}
}

// standardizeWithSD is standardizeInto against precomputed deviations: the
// division is by the identical sd value, so the result is bit-equal.
func (h *HyperplaneSelector) standardizeWithSD(f *features.Vector, sd, x []float64) []float64 {
	x = x[:features.Dim+1]
	sd = sd[:features.Dim] // hoist the bound proof out of the loop
	for i := 0; i < features.Dim; i++ {
		z := (f[i] - h.mean[i]) / sd[i]
		if z > standardizeClamp {
			z = standardizeClamp
		} else if z < -standardizeClamp {
			z = -standardizeClamp
		}
		x[i] = z
	}
	x[features.Dim] = 1
	return x
}

func dot(a, b []float64) float64 {
	b = b[:len(a)] // hoist the bound proof out of the loop
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// scoresWith computes each expert's gating score at f — the hyperplane
// value discounted by recent prediction error — into caller scratch: x must
// have length ≥ Dim+1 and out length ≥ k.
func (h *HyperplaneSelector) scoresWith(f *features.Vector, x, out []float64) []float64 {
	return h.scoreStandardized(h.standardizeInto(f, x), out)
}

// scoreStandardized computes the gating scores from an already-standardized
// x̃ — the shared tail of scoresWith and the sd-cached fast variant.
func (h *HyperplaneSelector) scoreStandardized(x, out []float64) []float64 {
	// theta, errSeen, errEMA and out all have k entries by construction;
	// re-slicing lets the loop body run check-free. The penalty scale is
	// loop-invariant, so the division happens once, not once per expert.
	theta := h.theta
	out = out[:len(theta)]
	errSeen := h.errSeen[:len(theta)]
	errEMA := h.errEMA[:len(theta)]
	if h.scaleEMA > 1e-12 {
		pen := h.penalty / h.scaleEMA
		for kk, th := range theta {
			v := dot(th, x)
			if errSeen[kk] {
				v -= pen * errEMA[kk]
			}
			out[kk] = v
		}
	} else {
		for kk, th := range theta {
			out[kk] = dot(th, x)
		}
	}
	return out
}

// Select implements Selector: the expert whose hyperplane scores f highest
// owns the region containing f, discounted by its recent prediction error,
// with hysteresis in favour of the incumbent so near-ties do not flap.
func (h *HyperplaneSelector) Select(f features.Vector) int {
	return h.selectWith(&f, nil, nil)
}

// selectWith is Select with caller scratch (x: len ≥ Dim+1, out: len ≥ k;
// nil allocates). The selection — including the incumbent mutation — is
// identical to Select's.
func (h *HyperplaneSelector) selectWith(f *features.Vector, x, out []float64) int {
	if h.k == 1 {
		return 0
	}
	if x == nil {
		x = make([]float64, features.Dim+1)
	}
	if out == nil {
		out = make([]float64, h.k)
	}
	return h.selectScored(h.scoresWith(f, x, out))
}

// selectScored applies the argmax-with-hysteresis selection rule to computed
// scores. Re-running it on identical scores returns the same expert and
// leaves the incumbent state unchanged (the mutation is idempotent), which
// is what lets the fast path reuse one selection for Update's internal vote
// and the trailing Select.
func (h *HyperplaneSelector) selectScored(sc []float64) int {
	best, bestV := 0, math.Inf(-1)
	for kk, v := range sc {
		if v > bestV {
			best, bestV = kk, v
		}
	}
	if h.incumbent >= 0 && h.incumbent < h.k && best != h.incumbent {
		if bestV < sc[h.incumbent]+switchMargin {
			return h.incumbent
		}
	}
	h.incumbent = best
	return best
}

// Update implements Selector. errors[k] is a^k = |‖ê^k‖−‖e‖| for the state
// f from the previous timestep. The best expert is the error argmin, gated
// by §5.3's criterion that it must beat the mean error of the others; when
// the current owner of f differs, the two experts' hyperplanes are nudged
// so f reclassifies.
func (h *HyperplaneSelector) Update(f features.Vector, errors []float64) {
	h.updateWith(&f, errors, nil, nil)
}

// updateWith is Update with caller scratch (x: len ≥ Dim+1, out: len ≥ k;
// nil allocates). Every mutation — Welford statistics, error EMAs, votes,
// misses, the perceptron step — is identical to Update's.
func (h *HyperplaneSelector) updateWith(f *features.Vector, errors, x, out []float64) {
	if h.k == 1 || len(errors) != h.k {
		return
	}
	if x == nil {
		x = make([]float64, features.Dim+1)
	}
	if out == nil {
		out = make([]float64, h.k)
	}
	h.observe(f)

	// Recent-accuracy bookkeeping for the Select-time penalty.
	meanErr := 0.0
	for i, e := range errors {
		if !h.errSeen[i] {
			h.errEMA[i] = e
			h.errSeen[i] = true
		} else {
			h.errEMA[i] += errEMADecay * (e - h.errEMA[i])
		}
		meanErr += e
	}
	meanErr /= float64(h.k)
	if h.scaleEMA == 0 {
		h.scaleEMA = meanErr
	} else {
		h.scaleEMA += errEMADecay * (meanErr - h.scaleEMA)
	}
	best := argminWithMeanGate(errors)
	if best < 0 {
		return
	}
	owner := h.selectWith(f, x, out)
	h.votes++
	if owner == best {
		return
	}
	h.misses++
	// Re-standardizing into the same scratch reproduces the values the
	// selection above used (standardization is pure given h's statistics).
	xs := h.standardizeInto(f, x)
	for i := range xs {
		h.theta[best][i] += h.rate * xs[i]
		h.theta[owner][i] -= h.rate * xs[i]
	}
}

// fastUpdateSelect is the batch fast path's fused selector step: it performs
// Update(pending, errors), the trailing Select(pending) that scores the
// refreshed hyperplanes, and the decision-time Select(cur), returning both
// selections. State mutations and results are byte-identical to the three
// separate calls; the fusion removes their redundant recomputation:
//
//   - the per-feature deviations are computed once (sdInto) — the Welford
//     statistics only change in the single observe at the top, so every
//     standardization in this decision shares them;
//   - when the update moved no hyperplane, the trailing Select(pending)
//     would recompute exactly the scores the update's internal vote used
//     (same statistics, same weights, same penalties) and selectScored is
//     idempotent on identical scores, so the vote's selection is returned
//     directly;
//   - when a perceptron step did fire, the standardized vector is already in
//     scratch and only the score dot products are redone — matching Update's
//     own re-standardization comment, one level stronger.
//
// Scratch: x len ≥ Dim+1, out len ≥ k, sd len ≥ Dim.
func (h *HyperplaneSelector) fastUpdateSelect(pending, cur *features.Vector, errors, x, out, sd []float64) (chosen, sel int) {
	if h.k == 1 {
		return 0, 0
	}
	if len(errors) != h.k {
		// Update is a no-op; both selections still run.
		return h.selectWith(pending, x, out), h.selectWith(cur, x, out)
	}
	h.observe(pending)
	h.sdInto(sd)

	meanErr := 0.0
	for i, e := range errors {
		if !h.errSeen[i] {
			h.errEMA[i] = e
			h.errSeen[i] = true
		} else {
			h.errEMA[i] += errEMADecay * (e - h.errEMA[i])
		}
		meanErr += e
	}
	meanErr /= float64(h.k)
	if h.scaleEMA == 0 {
		h.scaleEMA = meanErr
	} else {
		h.scaleEMA += errEMADecay * (meanErr - h.scaleEMA)
	}
	best := argminWithMeanGate(errors)
	if best < 0 {
		chosen = h.selectScored(h.scoreStandardized(h.standardizeWithSD(pending, sd, x), out))
	} else {
		xs := h.standardizeWithSD(pending, sd, x)
		owner := h.selectScored(h.scoreStandardized(xs, out))
		h.votes++
		if owner == best {
			chosen = owner
		} else {
			h.misses++
			for i := range xs {
				h.theta[best][i] += h.rate * xs[i]
				h.theta[owner][i] -= h.rate * xs[i]
			}
			chosen = h.selectScored(h.scoreStandardized(xs, out))
		}
	}
	sel = h.selectScored(h.scoreStandardized(h.standardizeWithSD(cur, sd, x), out))
	return chosen, sel
}

// MissRate reports the fraction of updates that required moving a
// hyperplane — a convergence indicator used in tests.
func (h *HyperplaneSelector) MissRate() float64 {
	if h.votes == 0 {
		return 0
	}
	return float64(h.misses) / float64(h.votes)
}

// Hyperplanes exposes a copy of the score hyperplanes for inspection.
func (h *HyperplaneSelector) Hyperplanes() [][]float64 {
	out := make([][]float64, len(h.theta))
	for i, th := range h.theta {
		out[i] = append([]float64(nil), th...)
	}
	return out
}

// argminWithMeanGate returns the index of the smallest error, but only if
// it beats the mean of the other errors (the §5.3 criterion: the selected
// region's expert must have error below the average of the rest); -1
// otherwise.
func argminWithMeanGate(errors []float64) int {
	best, bestV := 0, math.Inf(1)
	sum := 0.0
	for i, e := range errors {
		sum += e
		if e < bestV {
			best, bestV = i, e
		}
	}
	if len(errors) < 2 {
		return best
	}
	othersMean := (sum - bestV) / float64(len(errors)-1)
	if bestV < othersMean {
		return best
	}
	return -1
}

// AccuracySelector gates purely on recent prediction accuracy: each
// expert's environment error is tracked as an exponential moving average
// and the lowest-error expert wins everywhere in feature space. It ignores
// *where* in the feature space each expert is good, so it adapts fast but
// cannot keep two experts active for different regimes simultaneously. It
// is the ablation comparison for the hyperplane scheme.
type AccuracySelector struct {
	decay float64
	ema   []float64
	seen  []bool
}

// NewAccuracySelector creates the gating baseline; decay in (0,1] weights
// the newest observation (0 → default 0.3).
func NewAccuracySelector(k int, decay float64) *AccuracySelector {
	if k < 1 {
		panic("core: selector needs at least one expert")
	}
	if decay <= 0 || decay > 1 {
		decay = 0.3
	}
	return &AccuracySelector{decay: decay, ema: make([]float64, k), seen: make([]bool, k)}
}

// Name implements Selector.
func (a *AccuracySelector) Name() string { return "accuracy-ema" }

// Select implements Selector.
func (a *AccuracySelector) Select(features.Vector) int {
	best, bestV := 0, math.Inf(1)
	for i, seen := range a.seen {
		v := a.ema[i]
		if !seen {
			v = 0 // unseen experts get the benefit of the doubt
		}
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update implements Selector.
func (a *AccuracySelector) Update(_ features.Vector, errors []float64) {
	if len(errors) != len(a.ema) {
		return
	}
	for i, e := range errors {
		if !a.seen[i] {
			a.ema[i] = e
			a.seen[i] = true
			continue
		}
		a.ema[i] += a.decay * (e - a.ema[i])
	}
}

// FixedSelector always selects one expert; it turns a single expert into a
// Policy via Mixture and anchors the "individual expert" bars of Fig 15c.
type FixedSelector struct{ Index int }

// Name implements Selector.
func (FixedSelector) Name() string { return "fixed" }

// Select implements Selector.
func (r FixedSelector) Select(features.Vector) int { return r.Index }

// Update implements Selector.
func (FixedSelector) Update(features.Vector, []float64) {}

// RandomSelector picks an expert uniformly at random using a deterministic
// linear-congruential stream; it is the lower-bound ablation for selection
// quality.
type RandomSelector struct {
	K     int
	state uint64
}

// NewRandomSelector returns a random gate over k experts.
func NewRandomSelector(k int, seed uint64) *RandomSelector {
	if k < 1 {
		panic("core: selector needs at least one expert")
	}
	if seed == 0 {
		seed = 1
	}
	return &RandomSelector{K: k, state: seed}
}

// Name implements Selector.
func (*RandomSelector) Name() string { return "random" }

// Select implements Selector.
func (r *RandomSelector) Select(features.Vector) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(r.K))
}

// Update implements Selector.
func (*RandomSelector) Update(features.Vector, []float64) {}

// Variable-K support (resizableSelector, see evolution.go). FixedSelector
// deliberately does not implement it: a mixture pinned to one expert has no
// business evolving its pool, and NewMixture rejects the combination.

// addExpert implements resizableSelector: the newborn inherits a copy of
// its parent's hyperplane and recent-error record, so it starts owning the
// parent's region and must differentiate itself through its own scored
// predictions. parent < 0 seeds a blank slot (zero hyperplane — the even
// initial partition — and no error history).
func (h *HyperplaneSelector) addExpert(parent int) {
	row := make([]float64, features.Dim+1)
	ema, seen := 0.0, false
	if parent >= 0 && parent < h.k {
		copy(row, h.theta[parent])
		ema, seen = h.errEMA[parent], h.errSeen[parent]
	}
	h.theta = append(h.theta, row)
	h.errEMA = append(h.errEMA, ema)
	h.errSeen = append(h.errSeen, seen)
	h.k++
}

// removeExpert implements resizableSelector: slot k is spliced out and the
// incumbent index follows its expert (cleared when the incumbent itself
// retires).
func (h *HyperplaneSelector) removeExpert(k int) {
	h.theta = append(h.theta[:k], h.theta[k+1:]...)
	h.errEMA = append(h.errEMA[:k], h.errEMA[k+1:]...)
	h.errSeen = append(h.errSeen[:k], h.errSeen[k+1:]...)
	h.k--
	switch {
	case h.incumbent == k:
		h.incumbent = -1
	case h.incumbent > k:
		h.incumbent--
	}
}

// addExpert implements resizableSelector. The newborn inherits its parent's
// accuracy record rather than the automatic win Select grants unseen slots —
// a newborn must beat the pool, not be handed it.
func (a *AccuracySelector) addExpert(parent int) {
	ema, seen := 0.0, false
	if parent >= 0 && parent < len(a.ema) {
		ema, seen = a.ema[parent], a.seen[parent]
	}
	a.ema = append(a.ema, ema)
	a.seen = append(a.seen, seen)
}

// removeExpert implements resizableSelector.
func (a *AccuracySelector) removeExpert(k int) {
	a.ema = append(a.ema[:k], a.ema[k+1:]...)
	a.seen = append(a.seen[:k], a.seen[k+1:]...)
}

// addExpert implements resizableSelector.
func (r *RandomSelector) addExpert(int) { r.K++ }

// removeExpert implements resizableSelector.
func (r *RandomSelector) removeExpert(int) { r.K-- }
