package workload

import (
	"fmt"
	"sort"
)

// Catalog returns models for the benchmark programs named in the paper's
// figures: the OpenMP C NAS programs (bt, cg, ep, ft, is, lu, mg, sp), the
// SpecOMP C programs (ammp, art, equake, swim) and Parsec programs
// (blackscholes, bodytrack, freqmine, fluidanimate). Parameters encode each
// program's published character:
//
//   - ep is embarrassingly parallel (compute-bound Monte Carlo);
//   - bt/sp/lu are CFD solvers with good but sub-linear scaling;
//   - cg and mg have irregular memory access and barriers — the programs
//     §7.1 reports as slowing down when too many threads are spawned;
//   - ft and is are memory-bandwidth bound;
//   - art and equake (SpecOMP) are memory-bound/irregular, ammp computes;
//   - blackscholes is compute-bound and scalable, bodytrack and
//     fluidanimate are synchronization-heavy, freqmine is irregular.
//
// Work totals are sized so that an isolated run on the 32-core evaluation
// machine takes on the order of 1–3 virtual minutes, mirroring the relative
// lengths of the suites' largest inputs.
func Catalog() []*Program {
	progs := []*Program{
		// --- NAS ---
		build("bt", NAS, 40, 5.2, []Region{
			{Name: "x-solve", Work: 1.3, ParallelFrac: 0.985, MemIntensity: 0.38, SyncCost: 0.004, Grain: 64, LoadStore: 42, Instructions: 100, Branches: 6},
			{Name: "y-solve", Work: 1.3, ParallelFrac: 0.985, MemIntensity: 0.40, SyncCost: 0.004, Grain: 64, LoadStore: 44, Instructions: 102, Branches: 6},
			{Name: "z-solve", Work: 1.4, ParallelFrac: 0.982, MemIntensity: 0.45, SyncCost: 0.005, Grain: 64, LoadStore: 47, Instructions: 104, Branches: 7},
			{Name: "add", Work: 0.4, ParallelFrac: 0.97, MemIntensity: 0.55, SyncCost: 0.003, Grain: 64, LoadStore: 52, Instructions: 90, Branches: 4},
		}),
		build("cg", NAS, 50, 7.0, []Region{
			{Name: "sparse-matvec", Work: 1.5, ParallelFrac: 0.94, MemIntensity: 0.89, SyncCost: 0.021, Grain: 12, LoadStore: 66, Instructions: 100, Branches: 9},
			{Name: "dot-reduce", Work: 0.35, ParallelFrac: 0.88, MemIntensity: 0.64, SyncCost: 0.024, Grain: 10, LoadStore: 50, Instructions: 80, Branches: 5},
		}),
		build("ep", NAS, 16, 0.3, []Region{
			{Name: "random-pairs", Work: 7.0, ParallelFrac: 0.998, MemIntensity: 0.04, SyncCost: 0.0008, Grain: 256, LoadStore: 18, Instructions: 100, Branches: 11},
		}),
		build("ft", NAS, 22, 6.5, []Region{
			{Name: "fft-xy", Work: 2.2, ParallelFrac: 0.97, MemIntensity: 0.62, SyncCost: 0.005, Grain: 20, LoadStore: 55, Instructions: 100, Branches: 5},
			{Name: "transpose", Work: 1.1, ParallelFrac: 0.93, MemIntensity: 0.78, SyncCost: 0.007, Grain: 16, LoadStore: 70, Instructions: 85, Branches: 4},
			{Name: "fft-z", Work: 1.6, ParallelFrac: 0.96, MemIntensity: 0.58, SyncCost: 0.005, Grain: 20, LoadStore: 54, Instructions: 98, Branches: 5},
		}),
		build("is", NAS, 36, 4.0, []Region{
			{Name: "rank", Work: 1.5, ParallelFrac: 0.90, MemIntensity: 0.88, SyncCost: 0.010, Grain: 10, LoadStore: 75, Instructions: 100, Branches: 8},
			{Name: "key-scan", Work: 0.5, ParallelFrac: 0.80, MemIntensity: 0.70, SyncCost: 0.016, Grain: 8, LoadStore: 60, Instructions: 70, Branches: 12},
		}),
		build("lu", NAS, 45, 5.8, []Region{
			{Name: "ssor-lower", Work: 1.2, ParallelFrac: 0.975, MemIntensity: 0.48, SyncCost: 0.007, Grain: 48, LoadStore: 49, Instructions: 100, Branches: 8},
			{Name: "ssor-upper", Work: 1.2, ParallelFrac: 0.975, MemIntensity: 0.48, SyncCost: 0.007, Grain: 48, LoadStore: 49, Instructions: 100, Branches: 8},
			{Name: "rhs", Work: 0.9, ParallelFrac: 0.985, MemIntensity: 0.42, SyncCost: 0.004, Grain: 64, LoadStore: 45, Instructions: 95, Branches: 6},
		}),
		build("mg", NAS, 30, 7.5, []Region{
			{Name: "restrict", Work: 1.0, ParallelFrac: 0.93, MemIntensity: 0.74, SyncCost: 0.015, Grain: 14, LoadStore: 64, Instructions: 95, Branches: 7},
			{Name: "smooth", Work: 1.6, ParallelFrac: 0.95, MemIntensity: 0.70, SyncCost: 0.013, Grain: 16, LoadStore: 60, Instructions: 100, Branches: 6},
			{Name: "interp", Work: 0.9, ParallelFrac: 0.92, MemIntensity: 0.72, SyncCost: 0.016, Grain: 14, LoadStore: 62, Instructions: 92, Branches: 8},
		}),
		build("sp", NAS, 42, 5.0, []Region{
			{Name: "x-sweep", Work: 1.2, ParallelFrac: 0.98, MemIntensity: 0.44, SyncCost: 0.006, Grain: 56, LoadStore: 46, Instructions: 100, Branches: 6},
			{Name: "y-sweep", Work: 1.2, ParallelFrac: 0.98, MemIntensity: 0.44, SyncCost: 0.006, Grain: 56, LoadStore: 46, Instructions: 100, Branches: 6},
			{Name: "z-sweep", Work: 1.3, ParallelFrac: 0.975, MemIntensity: 0.50, SyncCost: 0.007, Grain: 56, LoadStore: 50, Instructions: 102, Branches: 7},
			{Name: "txinvr", Work: 0.5, ParallelFrac: 0.96, MemIntensity: 0.40, SyncCost: 0.004, Grain: 64, LoadStore: 40, Instructions: 88, Branches: 5},
		}),
		// --- SpecOMP ---
		build("ammp", SpecOMP, 28, 2.2, []Region{
			{Name: "mm-fv-update", Work: 2.4, ParallelFrac: 0.97, MemIntensity: 0.30, SyncCost: 0.005, Grain: 64, LoadStore: 38, Instructions: 100, Branches: 10},
			{Name: "neighbor-list", Work: 1.0, ParallelFrac: 0.90, MemIntensity: 0.52, SyncCost: 0.011, Grain: 32, LoadStore: 55, Instructions: 90, Branches: 14},
		}),
		build("art", SpecOMP, 34, 3.6, []Region{
			{Name: "match", Work: 1.6, ParallelFrac: 0.91, MemIntensity: 0.86, SyncCost: 0.012, Grain: 10, LoadStore: 72, Instructions: 100, Branches: 9},
			{Name: "train-f1", Work: 0.9, ParallelFrac: 0.87, MemIntensity: 0.80, SyncCost: 0.015, Grain: 8, LoadStore: 68, Instructions: 88, Branches: 8},
		}),
		build("equake", SpecOMP, 30, 4.4, []Region{
			{Name: "smvp", Work: 1.8, ParallelFrac: 0.93, MemIntensity: 0.76, SyncCost: 0.010, Grain: 14, LoadStore: 70, Instructions: 100, Branches: 7},
			{Name: "time-integrate", Work: 0.8, ParallelFrac: 0.95, MemIntensity: 0.50, SyncCost: 0.006, Grain: 18, LoadStore: 48, Instructions: 92, Branches: 5},
		}),
		build("swim", SpecOMP, 26, 6.8, []Region{
			{Name: "calc1", Work: 1.4, ParallelFrac: 0.97, MemIntensity: 0.80, SyncCost: 0.005, Grain: 18, LoadStore: 74, Instructions: 100, Branches: 3},
			{Name: "calc2", Work: 1.4, ParallelFrac: 0.97, MemIntensity: 0.82, SyncCost: 0.005, Grain: 18, LoadStore: 76, Instructions: 100, Branches: 3},
			{Name: "calc3", Work: 1.2, ParallelFrac: 0.96, MemIntensity: 0.78, SyncCost: 0.006, Grain: 18, LoadStore: 72, Instructions: 96, Branches: 4},
		}),
		// --- Parsec ---
		build("bscholes", Parsec, 24, 0.6, []Region{
			{Name: "price-options", Work: 3.6, ParallelFrac: 0.995, MemIntensity: 0.10, SyncCost: 0.001, Grain: 128, LoadStore: 24, Instructions: 100, Branches: 8},
		}),
		build("btrack", Parsec, 26, 1.8, []Region{
			{Name: "edge-detect", Work: 1.1, ParallelFrac: 0.94, MemIntensity: 0.46, SyncCost: 0.012, Grain: 14, LoadStore: 50, Instructions: 100, Branches: 12},
			{Name: "particle-weights", Work: 1.5, ParallelFrac: 0.92, MemIntensity: 0.36, SyncCost: 0.018, Grain: 12, LoadStore: 42, Instructions: 96, Branches: 16},
			{Name: "resample", Work: 0.5, ParallelFrac: 0.75, MemIntensity: 0.44, SyncCost: 0.022, Grain: 8, LoadStore: 46, Instructions: 70, Branches: 13},
		}),
		build("fmine", Parsec, 22, 3.0, []Region{
			{Name: "build-fptree", Work: 1.3, ParallelFrac: 0.85, MemIntensity: 0.66, SyncCost: 0.016, Grain: 8, LoadStore: 58, Instructions: 100, Branches: 18},
			{Name: "mine-patterns", Work: 2.2, ParallelFrac: 0.92, MemIntensity: 0.58, SyncCost: 0.010, Grain: 14, LoadStore: 52, Instructions: 105, Branches: 20},
		}),
		build("fanimate", Parsec, 32, 2.4, []Region{
			{Name: "rebuild-grid", Work: 0.7, ParallelFrac: 0.88, MemIntensity: 0.60, SyncCost: 0.020, Grain: 10, LoadStore: 56, Instructions: 90, Branches: 10},
			{Name: "compute-forces", Work: 1.8, ParallelFrac: 0.96, MemIntensity: 0.48, SyncCost: 0.014, Grain: 16, LoadStore: 48, Instructions: 100, Branches: 9},
			{Name: "advance", Work: 0.6, ParallelFrac: 0.93, MemIntensity: 0.52, SyncCost: 0.017, Grain: 14, LoadStore: 50, Instructions: 85, Branches: 7},
		}),
	}
	return progs
}

// build assembles and validates one program; construction errors are
// programmer errors in the static catalog, so they panic.
func build(name string, suite Suite, iterations int, workingSetGB float64, regions []Region) *Program {
	p := &Program{
		Name:         name,
		Suite:        suite,
		Regions:      regions,
		Iterations:   iterations,
		WorkingSetGB: workingSetGB,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	p.finalize()
	return p
}

// ByName returns the catalog program with the given name.
func ByName(name string) (*Program, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown program %q", name)
}

// Names returns all catalog program names, sorted.
func Names() []string {
	progs := Catalog()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Size labels the workload configurations of Table 3.
type Size string

// Workload sizes from Table 3.
const (
	Small Size = "small"
	Large Size = "large"
)

// Set is one external-workload configuration: the programs that co-execute
// with the target.
type Set struct {
	Size     Size
	Variant  int // (i) = 1, (ii) = 2, matching Table 3 rows
	Programs []string
}

// Sets returns the workload configurations of Table 3. ft stands in for the
// table's "fft" (the NAS fast Fourier transform benchmark).
func Sets(size Size) []Set {
	switch size {
	case Small:
		return []Set{
			{Size: Small, Variant: 1, Programs: []string{"is", "cg"}},
			{Size: Small, Variant: 2, Programs: []string{"ammp", "ft"}},
		}
	case Large:
		return []Set{
			{Size: Large, Variant: 1, Programs: []string{"bt", "sp", "equake", "is", "cg", "art"}},
			{Size: Large, Variant: 2, Programs: []string{"bscholes", "lu", "bt", "sp", "fmine", "art", "mg"}},
		}
	default:
		return nil
	}
}

// SetPrograms resolves a workload set to program models (fresh clones, so
// callers can rescale work without aliasing the catalog).
func SetPrograms(s Set) ([]*Program, error) {
	progs := make([]*Program, 0, len(s.Programs))
	for _, name := range s.Programs {
		p, err := ByName(name)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p.Clone())
	}
	return progs, nil
}
