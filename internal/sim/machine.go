// Package sim is the platform substrate: a discrete-time simulator of a
// shared multicore machine running several multithreaded programs under an
// OS-style fair scheduler. It stands in for the paper's 32-core Xeon +
// Linux testbed (Table 2) and produces the runtime observables the policies
// consume: available processors, run queue length, 1- and 5-minute load
// averages, cached memory and page-free rate (Table 1, f4–f10), plus each
// program's instantaneous progress.
//
// The performance model captures the effects thread selection trades off:
//
//   - Amdahl scaling limited by each region's parallel fraction and grain;
//   - fair-share time slicing — when runnable threads exceed available
//     processors every thread gets a fraction of a core;
//   - oversubscription cost — context switching inflates execution time as
//     the run queue grows;
//   - memory-system contention — memory-intensive co-runners depress each
//     other, scaled by each region's memory intensity;
//   - synchronization cost growing with thread count (barriers,
//     reductions), which is what makes over-threading irregular programs
//     slow (§7.1);
//   - optional affinity scheduling (§7.6), which removes most of the
//     thread-migration penalty.
package sim

import (
	"fmt"

	"moe/internal/trace"
)

// MachineConfig describes the simulated platform. Defaults mirror Table 2's
// evaluation machine (32 cores as 4 one-socket nodes of 8 cores each,
// 64 GB RAM, shared LLC).
type MachineConfig struct {
	// Cores is the total number of hardware contexts.
	Cores int
	// Sockets is the number of NUMA nodes the cores are spread over
	// (Table 2: "4 one-socket nodes, 8 cores/socket"). 0 means a single
	// socket. Threads scattered across sockets pay a remote-memory
	// penalty that affinity scheduling (§7.6) largely removes by packing
	// them.
	Sockets int
	// MemoryGB is the installed RAM, bounding cached memory (f9).
	MemoryGB float64
	// Hardware drives processor availability over time; nil means all
	// cores are always available.
	Hardware *trace.HardwareTrace
	// Affinity enables affinity scheduling (threads pinned to cores),
	// §7.6.
	Affinity bool

	// Model constants; zero values select the calibrated defaults below.

	// OversubPenalty scales the context-switch cost of oversubscription.
	OversubPenalty float64
	// ContentionScale scales the memory-contention slowdown.
	ContentionScale float64
	// MigrationPenalty scales the thread-migration cost that affinity
	// scheduling removes.
	MigrationPenalty float64
	// AffinityResidual is the fraction of the migration penalty that
	// remains when affinity scheduling is enabled.
	AffinityResidual float64
	// NUMAPenalty scales the remote-memory cost of threads scattered
	// across sockets.
	NUMAPenalty float64
}

// Calibrated model defaults. They were tuned so an isolated scalable
// program reaches ≥ P/4 speedup on P cores (the paper's scalability
// criterion) while irregular programs peak well below the core count.
const (
	DefaultOversubPenalty   = 0.35
	DefaultContentionScale  = 1.6
	DefaultMigrationPenalty = 0.25
	DefaultAffinityResidual = 0.3
	DefaultNUMAPenalty      = 0.4
)

// Eval32 returns the Table 2 evaluation platform: 32-core Xeon as 4
// one-socket nodes of 8 cores, 64 GB RAM.
func Eval32() MachineConfig {
	return MachineConfig{Cores: 32, Sockets: 4, MemoryGB: 64}
}

// Train12 returns the 12-core training platform of §5.1 (two 6-core
// sockets).
func Train12() MachineConfig {
	return MachineConfig{Cores: 12, Sockets: 2, MemoryGB: 24}
}

// withDefaults fills zero-valued model constants.
func (c MachineConfig) withDefaults() MachineConfig {
	if c.OversubPenalty == 0 {
		c.OversubPenalty = DefaultOversubPenalty
	}
	if c.ContentionScale == 0 {
		c.ContentionScale = DefaultContentionScale
	}
	if c.MigrationPenalty == 0 {
		c.MigrationPenalty = DefaultMigrationPenalty
	}
	if c.AffinityResidual == 0 {
		c.AffinityResidual = DefaultAffinityResidual
	}
	if c.NUMAPenalty == 0 {
		c.NUMAPenalty = DefaultNUMAPenalty
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	return c
}

// validate checks the configuration.
func (c MachineConfig) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: machine needs positive core count, got %d", c.Cores)
	}
	if c.MemoryGB <= 0 {
		return fmt.Errorf("sim: machine needs positive memory, got %g GB", c.MemoryGB)
	}
	return nil
}

// availableAt returns the processors available at virtual time t.
func (c MachineConfig) availableAt(t float64) int {
	if c.Hardware == nil {
		return c.Cores
	}
	p := c.Hardware.At(t)
	if p > c.Cores {
		p = c.Cores
	}
	if p < 1 {
		p = 1
	}
	return p
}
