package serve

import (
	"fmt"
	"time"
)

// DrainReport is what a graceful shutdown accomplished, tenant by tenant.
type DrainReport struct {
	// Tenants registered at drain time.
	Tenants int
	// Checkpointed tenants got a final snapshot written and their store
	// closed cleanly.
	Checkpointed int
	// Ephemeral tenants had no persistence configured (nothing to flush).
	Ephemeral int
	// JournalOnly tenants could not take a final snapshot — degraded
	// store, or a snapshot write failure during the drain itself — but
	// their write-ahead journal already covers every served decision, so a
	// restart still resumes them exactly.
	JournalOnly []string
	// Wedged tenants had a decision still running when the window closed;
	// their journal covers everything up to and including the wedged
	// observation.
	Wedged []string
	// Errors are the snapshot failures behind JournalOnly entries that
	// were not pre-existing degradation.
	Errors []string
	// Elapsed is wall time for the whole drain; TimedOut reports whether
	// in-flight requests were still running when the window closed.
	Elapsed  time.Duration
	TimedOut bool
}

// Clean reports whether every persistent tenant reached disk — by final
// snapshot or by an already-complete journal — with no new write failures.
func (r *DrainReport) Clean() bool {
	return len(r.Errors) == 0 && !r.TimedOut
}

// Drain is the graceful shutdown: stop admitting (requests arriving from
// here on shed with 503 "draining"), wait out in-flight requests, then
// checkpoint and close every tenant — all bounded by window (0 selects
// Config.DrainWindow). Only the first call drains; later calls error.
//
// A wedged tenant cannot hold the window hostage: its slot acquisition is
// bounded by the time remaining, and skipping its final snapshot is safe
// because the write-ahead journal has already recorded every observation
// it ever served (that is what makes restart-after-drain bit-identical
// even for the tenants drain could not touch).
func (s *Server) Drain(window time.Duration) (*DrainReport, error) {
	if window <= 0 {
		window = s.cfg.DrainWindow
	}
	if !s.draining.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("serve: already draining")
	}
	start := time.Now()
	s.Close() // watchdog off: recycling mid-drain would race the snapshots
	deadline := start.Add(window)

	// Phase 1: let in-flight requests finish, bounded. Requests past their
	// own deadline have already returned 504 and released their slots; a
	// wedged decision goroutine does not hold the inflight group, only its
	// tenant's slot — phase 2 handles it per tenant.
	flushed := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(flushed)
	}()
	rep := &DrainReport{}
	select {
	case <-flushed:
	case <-time.After(time.Until(deadline)):
		rep.TimedOut = true
	}

	// Phase 2: final checkpoint per tenant, deterministic order.
	for _, t := range s.tn.snapshot() {
		rep.Tenants++
		s.drainTenant(t, deadline, rep)
	}
	// Stream sessions close last: their in-flight frames were flushed with
	// the inflight group in phase 1 (late arrivals got "draining" error
	// frames), so by here every promised response has been written and the
	// client sees a clean EOF instead of a mid-response reset.
	s.closeStreamSessions()
	rep.Elapsed = time.Since(start)
	s.metrics.drainSeconds.Set(rep.Elapsed.Seconds())
	if rep.Clean() {
		s.metrics.drainClean.Set(1)
	} else {
		s.metrics.drainClean.Set(0)
	}
	s.logf("serve: drained %d tenants in %s: %d checkpointed, %d ephemeral, %d journal-only, %d wedged",
		rep.Tenants, rep.Elapsed.Round(time.Millisecond), rep.Checkpointed, rep.Ephemeral,
		len(rep.JournalOnly), len(rep.Wedged))
	return rep, nil
}

func (s *Server) drainTenant(t *tenant, deadline time.Time, rep *DrainReport) {
	t.mu.Lock()
	core := t.core
	degraded := t.degraded
	t.mu.Unlock()
	switch {
	case core == nil && t.dir == "":
		rep.Ephemeral++
		return
	case core == nil && degraded != "":
		// Abandoned generation that was serving journal-less: nothing of
		// it ever reached disk.
		rep.JournalOnly = append(rep.JournalOnly, t.id)
		return
	case core == nil:
		// Never built (registered but unserved), or abandoned by a recycle
		// with no rebuild since: the lineage on disk is already the
		// freshest state there is.
		rep.Checkpointed++
		return
	case core.store == nil && t.dir == "":
		rep.Ephemeral++
		return
	case core.store == nil:
		// Degraded generation: nothing attached to flush.
		rep.JournalOnly = append(rep.JournalOnly, t.id)
		if degraded == "" {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: no store attached", t.id))
		}
		return
	}
	// Take the tenant's decision slot so the final snapshot cannot race a
	// batch, but never past the window: a wedged batch forfeits its
	// snapshot, not the drain.
	wait := time.Until(deadline)
	if wait < 10*time.Millisecond {
		wait = 10 * time.Millisecond
	}
	select {
	case core.sem <- struct{}{}:
	case <-time.After(wait):
		rep.Wedged = append(rep.Wedged, t.id)
		return
	}
	defer func() { <-core.sem }()
	st, err := core.rt.Snapshot()
	if err == nil {
		err = core.store.WriteSnapshot(st)
	}
	if cerr := core.store.Close(); err == nil && cerr != nil {
		err = cerr
	}
	// Ship whatever the final snapshot produced: a drained primary should
	// leave its standby holding the exact lineage it wrote last.
	if s.primary != nil {
		if ferr := s.primary.Flush(t.id); ferr != nil {
			s.logf("serve: drain: tenant %s replication flush: %v", t.id, ferr)
		}
	}
	t.mu.Lock()
	t.core = nil // the store is closed; this generation must not serve again
	t.mu.Unlock()
	if err != nil {
		rep.JournalOnly = append(rep.JournalOnly, t.id)
		rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", t.id, err))
		s.logf("serve: drain: tenant %s final snapshot failed (journal still covers it): %v", t.id, err)
		return
	}
	rep.Checkpointed++
}
