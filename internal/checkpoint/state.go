package checkpoint

import (
	"fmt"

	"moe/internal/core"
	"moe/internal/features"
	"moe/internal/policy"
)

// State is the complete online decision state of a Runtime at one instant:
// the runtime-level bookkeeping (decision count, clock, last thread choice,
// last-known-good availability, thread histogram) plus the wrapped policy's
// own state. It is what a snapshot file contains and what Restore overlays
// onto a freshly constructed runtime.
//
// Deliberately not persisted: the policy's construction inputs — trained
// expert models, gating priors, tuning constants. Those are offline
// artifacts; the host reconstructs the same policy (same experts, same
// seeds) and State supplies everything learned since.
type State struct {
	// PolicyName is the wrapped policy's Name(); restore refuses a state
	// exported from a differently named policy.
	PolicyName string
	// MaxThreads is the machine cap the runtime was built with.
	MaxThreads int

	Decisions int
	LastN     int
	Clock     float64
	LastAvail int
	Sanitized int
	Hist      map[int]int

	Policy PolicyState
}

// Policy-state kinds.
const (
	// PolicyStateless marks a policy with no mutable state (default,
	// offline, oracle, fixed).
	PolicyStateless = "stateless"
	// PolicyMixture marks a core.Mixture state.
	PolicyMixture = "mixture"
	// PolicyOnline marks a policy.Online state.
	PolicyOnline = "online"
	// PolicyAnalytic marks a policy.Analytic state.
	PolicyAnalytic = "analytic"
	// PolicyOpaque marks a policy that implements Checkpointable and
	// carries its own opaque encoding.
	PolicyOpaque = "opaque"
)

// PolicyState is the tagged union of per-policy checkpoint state; exactly
// the field matching Kind is set.
type PolicyState struct {
	Kind     string
	Mixture  *core.MixtureState
	Online   *policy.OnlineState
	Analytic *policy.AnalyticState
	Opaque   []byte
}

// Observation is one journaled decision input — the raw observation exactly
// as the host reported it, before sanitization, so replaying it through
// Runtime.Decide reproduces the original decision bit-identically.
type Observation struct {
	Time           float64
	Features       features.Vector
	Rate           float64
	RegionStart    bool
	AvailableProcs int
}

// --- State encoding ---

// EncodeSnapshot serializes a State into a framed, checksummed snapshot
// record — the full contents of a snapshot file. run is the store's
// lineage stamp (see Store): it is carried inside the checksummed payload
// so recovery can tell which timeline a snapshot belongs to even if file
// names are unreliable.
func EncodeSnapshot(st *State, run int) ([]byte, error) {
	if run < 0 {
		return nil, fmt.Errorf("checkpoint: negative run %d", run)
	}
	payload, err := encodeState(st, run)
	if err != nil {
		return nil, err
	}
	return appendRecord(nil, recordSnapshot, payload), nil
}

// DecodeSnapshot parses and validates a snapshot file produced by
// EncodeSnapshot, returning the state and the lineage stamp it was written
// under. Arbitrary input never panics; any defect yields an error.
func DecodeSnapshot(data []byte) (*State, int, error) {
	kind, payload, size, err := readRecord(data)
	if err != nil {
		return nil, 0, err
	}
	if kind != recordSnapshot {
		return nil, 0, fmt.Errorf("%w: kind %d is not a snapshot", ErrBadRecord, kind)
	}
	if size != len(data) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after snapshot record", ErrBadRecord, len(data)-size)
	}
	return decodeState(payload)
}

// maxNameLen bounds decoded identifier strings.
const maxNameLen = 256

func encodeState(st *State, run int) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("checkpoint: nil state")
	}
	e := &enc{}
	e.int(run)
	e.str(st.PolicyName)
	e.int(st.MaxThreads)
	e.int(st.Decisions)
	e.int(st.LastN)
	e.f64(st.Clock)
	e.int(st.LastAvail)
	e.int(st.Sanitized)
	e.counts(st.Hist)
	if err := encodePolicyState(e, &st.Policy); err != nil {
		return nil, err
	}
	return e.b, nil
}

func decodeState(payload []byte) (*State, int, error) {
	d := &dec{b: payload}
	st := &State{}
	run := d.int()
	if d.err == nil && run < 0 {
		d.fail(fmt.Errorf("checkpoint: negative run %d", run))
	}
	st.PolicyName = d.str(maxNameLen)
	st.MaxThreads = d.int()
	st.Decisions = d.int()
	st.LastN = d.int()
	st.Clock = d.f64()
	st.LastAvail = d.int()
	st.Sanitized = d.int()
	st.Hist = d.counts()
	decodePolicyState(d, &st.Policy)
	if err := d.done(); err != nil {
		return nil, 0, err
	}
	return st, run, nil
}

func encodePolicyState(e *enc, ps *PolicyState) error {
	e.str(ps.Kind)
	switch ps.Kind {
	case PolicyStateless:
		return nil
	case PolicyMixture:
		if ps.Mixture == nil {
			return fmt.Errorf("checkpoint: mixture kind without mixture state")
		}
		encodeMixtureState(e, ps.Mixture)
		return nil
	case PolicyOnline:
		if ps.Online == nil {
			return fmt.Errorf("checkpoint: online kind without online state")
		}
		o := ps.Online
		e.int(o.Step)
		e.int(o.Direction)
		e.f64(o.LastRate)
		e.int(o.LastN)
		e.int(o.Settled)
		e.f64(o.NextMove)
		return nil
	case PolicyAnalytic:
		if ps.Analytic == nil {
			return fmt.Errorf("checkpoint: analytic kind without analytic state")
		}
		a := ps.Analytic
		e.u64(a.RNGState)
		e.int(a.Phase)
		e.int(a.ProbeN[0])
		e.int(a.ProbeN[1])
		e.f64(a.ProbeRate[0])
		e.f64(a.ProbeRate[1])
		e.int(a.ProbeIdx)
		e.f64(a.PhaseEnds)
		e.int(a.CommittedN)
		e.f64(a.ExpectedRate)
		e.f64(a.ProbeSum)
		e.int(a.ProbeCount)
		e.f64(a.CommitRate)
		e.bool(a.CommitSeen)
		e.f64(a.CommitStretch)
		return nil
	case PolicyOpaque:
		e.u64(uint64(len(ps.Opaque)))
		e.b = append(e.b, ps.Opaque...)
		return nil
	default:
		return fmt.Errorf("checkpoint: unknown policy-state kind %q", ps.Kind)
	}
}

func decodePolicyState(d *dec, ps *PolicyState) {
	ps.Kind = d.str(maxNameLen)
	if d.err != nil {
		return
	}
	switch ps.Kind {
	case PolicyStateless:
	case PolicyMixture:
		ps.Mixture = decodeMixtureState(d)
	case PolicyOnline:
		o := &policy.OnlineState{}
		o.Step = d.int()
		o.Direction = d.int()
		o.LastRate = d.f64()
		o.LastN = d.int()
		o.Settled = d.int()
		o.NextMove = d.f64()
		ps.Online = o
	case PolicyAnalytic:
		a := &policy.AnalyticState{}
		a.RNGState = d.u64()
		a.Phase = d.int()
		a.ProbeN[0] = d.int()
		a.ProbeN[1] = d.int()
		a.ProbeRate[0] = d.f64()
		a.ProbeRate[1] = d.f64()
		a.ProbeIdx = d.int()
		a.PhaseEnds = d.f64()
		a.CommittedN = d.int()
		a.ExpectedRate = d.f64()
		a.ProbeSum = d.f64()
		a.ProbeCount = d.int()
		a.CommitRate = d.f64()
		a.CommitSeen = d.bool()
		a.CommitStretch = d.f64()
		ps.Analytic = a
	case PolicyOpaque:
		n := d.length(1)
		if d.err != nil {
			return
		}
		ps.Opaque = append([]byte(nil), d.b[d.off:d.off+n]...)
		d.off += n
	default:
		d.fail(fmt.Errorf("checkpoint: unknown policy-state kind %q", ps.Kind))
	}
}

func encodeMixtureState(e *enc, m *core.MixtureState) {
	e.int(m.Experts)

	s := &m.Selector
	e.str(s.Kind)
	e.u64(uint64(len(s.Theta)))
	for _, row := range s.Theta {
		e.f64s(row)
	}
	e.f64s(s.Mean)
	e.f64s(s.M2)
	e.f64(s.Count)
	e.int(s.Misses)
	e.int(s.Votes)
	e.f64s(s.ErrEMA)
	e.bools(s.ErrSeen)
	e.f64(s.ScaleEMA)
	e.int(s.Incumbent)
	e.u64(s.RandState)

	e.u64(uint64(len(m.Health)))
	for _, h := range m.Health {
		e.int(h.State)
		e.f64(h.ErrEMA)
		e.bool(h.Seen)
		e.int(h.CoolLeft)
		e.int(h.CleanLeft)
		e.int(h.Quarantines)
	}

	t := &m.Trust
	e.bool(t.HaveFeat)
	if t.HaveFeat {
		e.f64s(t.LastFeat)
	}
	e.f64(t.LastProc)
	e.bool(t.HaveProc)
	e.f64(t.ProcChurn)
	e.int(t.Suspects)

	e.bool(m.PendingValid)
	if m.PendingValid {
		e.f64s(m.PendingFeat)
		e.u64(uint64(len(m.PendingPred)))
		for _, p := range m.PendingPred {
			e.f64(p.Norm)
			e.bool(p.HasVec)
			if p.HasVec {
				e.f64s(p.Vec)
				e.bool(p.HasSigma)
				if p.HasSigma {
					e.f64s(p.Sigma)
				}
			}
		}
	}

	e.counts(m.Selections)
	e.counts(m.ThreadHist)
	e.ints(m.Accurate)
	e.ints(m.Observations)
	e.int(m.MixAccurate)
	e.int(m.MixObserved)
	e.f64s(m.ErrSum)
	e.f64(m.ObsNormSum)
	e.int(m.Sanitized)
	e.int(m.Rerouted)
	e.int(m.Fallback)

	// The evolution section is an optional tail: frozen mixtures append
	// nothing, so their snapshots are byte-identical to the pre-evolution
	// format, and the decoder sniffs presence from the bytes remaining.
	if m.Evolution != nil {
		encodeEvolutionState(e, m.Evolution)
	}
}

func encodeEvolutionState(e *enc, ev *core.EvolutionState) {
	e.u64(ev.RNG)
	e.int(ev.Decisions)
	e.int(ev.Births)
	e.int(ev.Retirements)
	e.int(ev.Epoch)
	e.int(ev.RetiredSel)
	e.int(ev.PendingThreads)

	e.u64(uint64(len(ev.Pool)))
	for i := range ev.Pool {
		p := &ev.Pool[i]
		e.int(p.SeedIndex)
		e.str(p.Name)
		e.int(p.BornAt)
		e.u64(uint64(len(p.Parents)))
		for _, name := range p.Parents {
			e.str(name)
		}
		e.str(p.TrainedOn)
		e.int(p.MaxThreads)
		e.f64s(p.ThreadCoeffs)
		e.f64s(p.EnvCoeffs)
		e.f64s(p.FeatMean)
		e.f64s(p.FeatStd)
	}

	e.f64s(ev.HistFeat)
	e.f64s(ev.HistNorm)
	e.ints(ev.HistThreads)
	e.f64s(ev.HistRate)

	e.ints(ev.NicheSel)
	e.f64s(ev.NicheErr)
	e.bools(ev.NicheSeen)
}

func decodeEvolutionState(d *dec) *core.EvolutionState {
	ev := &core.EvolutionState{}
	ev.RNG = d.u64()
	ev.Decisions = d.int()
	ev.Births = d.int()
	ev.Retirements = d.int()
	ev.Epoch = d.int()
	ev.RetiredSel = d.int()
	ev.PendingThreads = d.int()

	nPool := d.length(4)
	if d.err != nil {
		return nil
	}
	ev.Pool = make([]core.PoolMemberState, nPool)
	for i := range ev.Pool {
		p := &ev.Pool[i]
		p.SeedIndex = d.int()
		p.Name = d.str(maxNameLen)
		p.BornAt = d.int()
		nParents := d.length(1)
		if d.err != nil {
			return nil
		}
		for j := 0; j < nParents; j++ {
			p.Parents = append(p.Parents, d.str(maxNameLen))
		}
		p.TrainedOn = d.str(maxNameLen)
		p.MaxThreads = d.int()
		p.ThreadCoeffs = d.f64s()
		p.EnvCoeffs = d.f64s()
		p.FeatMean = d.f64s()
		p.FeatStd = d.f64s()
	}

	ev.HistFeat = d.f64s()
	ev.HistNorm = d.f64s()
	ev.HistThreads = d.ints()
	ev.HistRate = d.f64s()

	ev.NicheSel = d.ints()
	ev.NicheErr = d.f64s()
	ev.NicheSeen = d.bools()
	if d.err != nil {
		return nil
	}
	return ev
}

func decodeMixtureState(d *dec) *core.MixtureState {
	m := &core.MixtureState{}
	m.Experts = d.int()

	s := &m.Selector
	s.Kind = d.str(maxNameLen)
	nTheta := d.length(1)
	if d.err != nil {
		return nil
	}
	if nTheta > 0 {
		s.Theta = make([][]float64, nTheta)
		for i := range s.Theta {
			s.Theta[i] = d.f64s()
		}
	}
	s.Mean = d.f64s()
	s.M2 = d.f64s()
	s.Count = d.f64()
	s.Misses = d.int()
	s.Votes = d.int()
	s.ErrEMA = d.f64s()
	s.ErrSeen = d.bools()
	s.ScaleEMA = d.f64()
	s.Incumbent = d.int()
	s.RandState = d.u64()

	nHealth := d.length(6)
	if d.err != nil {
		return nil
	}
	m.Health = make([]core.ExpertHealthState, nHealth)
	for i := range m.Health {
		h := &m.Health[i]
		h.State = d.int()
		h.ErrEMA = d.f64()
		h.Seen = d.bool()
		h.CoolLeft = d.int()
		h.CleanLeft = d.int()
		h.Quarantines = d.int()
	}

	t := &m.Trust
	t.HaveFeat = d.bool()
	if t.HaveFeat {
		t.LastFeat = d.f64s()
	}
	t.LastProc = d.f64()
	t.HaveProc = d.bool()
	t.ProcChurn = d.f64()
	t.Suspects = d.int()

	m.PendingValid = d.bool()
	if m.PendingValid {
		m.PendingFeat = d.f64s()
		nPred := d.length(9)
		if d.err != nil {
			return nil
		}
		m.PendingPred = make([]core.EnvPredictionState, nPred)
		for i := range m.PendingPred {
			p := &m.PendingPred[i]
			p.Norm = d.f64()
			p.HasVec = d.bool()
			if p.HasVec {
				p.Vec = d.f64s()
				p.HasSigma = d.bool()
				if p.HasSigma {
					p.Sigma = d.f64s()
				}
			}
		}
	}

	m.Selections = d.counts()
	m.ThreadHist = d.counts()
	m.Accurate = d.ints()
	m.Observations = d.ints()
	m.MixAccurate = d.int()
	m.MixObserved = d.int()
	m.ErrSum = d.f64s()
	m.ObsNormSum = d.f64()
	m.Sanitized = d.int()
	m.Rerouted = d.int()
	m.Fallback = d.int()
	if d.err != nil {
		return nil
	}
	// The mixture is the last section of the snapshot payload, so leftover
	// bytes here can only be the optional evolution tail (absent from
	// frozen-pool and pre-evolution snapshots).
	if d.remaining() > 0 {
		m.Evolution = decodeEvolutionState(d)
		if d.err != nil {
			return nil
		}
	}
	return m
}

// --- Observation encoding ---

func encodeObservation(e *enc, obs *Observation) {
	e.f64(obs.Time)
	for _, v := range obs.Features {
		e.f64(v)
	}
	e.f64(obs.Rate)
	e.bool(obs.RegionStart)
	e.int(obs.AvailableProcs)
}

func decodeObservation(d *dec) Observation {
	var obs Observation
	obs.Time = d.f64()
	for i := range obs.Features {
		obs.Features[i] = d.f64()
	}
	obs.Rate = d.f64()
	obs.RegionStart = d.bool()
	obs.AvailableProcs = d.int()
	return obs
}
