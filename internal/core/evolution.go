package core

import (
	"fmt"

	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Online expert lifecycle: the mixture's pool stops being frozen. Every
// cfg.Period decisions the mixture runs one lifecycle step — retire at most
// one expert that is persistently dominated in every niche it has served,
// then breed at most one candidate from the pool's best tables and the
// recent observation history. A newborn enters the existing health
// machinery on probation (never good standing) and earns selection the same
// way a re-admitted quarantined expert does; retirement is permanent.
//
// Everything is deterministic: the only randomness is the seeded splitmix
// stream in evolve.RNG, consumed exclusively inside lifecycle steps, which
// fire at decision counts. Replaying the same observation stream therefore
// replays the identical sequence of births and retirements, which is what
// lets the write-ahead journal rebuild an evolved pool after a crash.

// evolutionState is the mixture's lifecycle bookkeeping. nil when evolution
// is disabled — every hook checks for nil, so a frozen mixture runs the
// exact pre-evolution code path.
type evolutionState struct {
	cfg evolve.Config
	rng *evolve.RNG

	decisions   int // decisions seen; lifecycle fires on multiples of Period
	births      int // lifetime birth count (also names newborns)
	retirements int
	epoch       int // pool-membership version; bumps on every birth/retirement

	// retiredSel accumulates the selection counts of retired experts so
	// Snapshot's decision total stays conserved across pool changes.
	retiredSel int

	// pendingThreads is the thread count committed alongside pendingFeat,
	// completing the (features, threads, next-rate) behavior-cloning sample
	// when the next observation arrives.
	pendingThreads int

	hist  *evolve.History
	niche *evolve.NicheStats

	// Per-expert lineage, parallel to Mixture.experts.
	born    []int      // decision count at birth (0 for the seed pool)
	seedIdx []int      // index into Mixture.baseline, or -1 for evolved experts
	parents [][]string // parent names, nil for the seed pool

	// events collects this decision's births/retirements for telemetry;
	// reset at the top of every Decide.
	events []telemetry.PoolEvent
}

func newEvolutionState(cfg evolve.Config, k int) *evolutionState {
	e := &evolutionState{
		cfg:     cfg,
		rng:     evolve.NewRNG(cfg.Seed),
		hist:    evolve.NewHistory(cfg.HistoryCap),
		niche:   evolve.NewNicheStats(k),
		born:    make([]int, k),
		seedIdx: make([]int, k),
		parents: make([][]string, k),
	}
	for i := range e.seedIdx {
		e.seedIdx[i] = i
	}
	return e
}

// resizableSelector is implemented by selectors that can track a pool whose
// membership changes. NewMixture refuses to enable evolution over a
// selector that cannot.
type resizableSelector interface {
	// addExpert grows the selector by one slot, seeded from the parent's
	// learned state (parent < 0 seeds a blank slot).
	addExpert(parent int)
	// removeExpert splices out slot k.
	removeExpert(k int)
}

// recordScored folds one scored observation into the lifecycle's evidence:
// the completed (features, next-norm, threads, rate) sample joins the refit
// history, and each expert's scored error lands in the niche the pending
// state occupied. Called from Decide's scoring arm, after health has
// observed the same errors.
func (m *Mixture) evoRecordScored(raw []float64, observedNorm, rate float64) {
	e := m.evo
	e.hist.Append(evolve.Sample{
		Feat:     m.pendingFeat,
		NextNorm: observedNorm,
		Threads:  e.pendingThreads,
		Rate:     rate,
	})
	niche := expert.NicheOf(&m.pendingFeat)
	for k := range m.experts {
		e.niche.ObserveErr(k, niche, relErr(raw[k], observedNorm))
	}
}

// evoLifecycle runs one lifecycle step: at most one retirement, then at
// most one birth. Called from the tail of Decide every cfg.Period
// decisions.
func (m *Mixture) evoLifecycle() {
	e := m.evo
	if len(m.experts) > e.cfg.MinPool {
		if k := m.retirementCandidate(); k >= 0 {
			m.removePoolExpert(k)
		}
	}
	if len(m.experts) < e.cfg.MaxPool {
		m.spawnPoolExpert()
	}
}

// retirementCandidate returns the lowest-indexed expert old enough to judge
// and dominated in every niche it has served, or -1. Quarantine is no
// shield: a dominated expert is dominated whatever its health state.
func (m *Mixture) retirementCandidate() int {
	e := m.evo
	for k := range m.experts {
		if e.decisions-e.born[k] < e.cfg.MinAge {
			continue
		}
		if e.niche.Dominated(k, e.cfg.DominanceMargin) {
			return k
		}
	}
	return -1
}

// spawnPoolExpert breeds one candidate and admits it on probation. A failed
// breed (thin history over non-Table-1 parents, singular fits, invalid
// genome) skips the birth; the RNG draws consumed are part of the
// deterministic stream either way.
func (m *Mixture) spawnPoolExpert() {
	e := m.evo

	// Parent A: the proven best of a randomly drawn niche — QD-style, the
	// emitter walks the archive rather than always breeding the global
	// best. Fall back to the healthiest expert when the niche is empty.
	niche := e.rng.Intn(expert.NicheCount)
	a := e.niche.BestInNiche(niche, m.health.usable)
	if a < 0 {
		a = m.health.healthiest()
	}
	if a < 0 {
		return // whole pool quarantined: nothing credible to breed from
	}

	// Parent B: a random other usable expert, when one exists.
	var pb *expert.Expert
	bName := ""
	if others := m.usableExcept(a); len(others) > 0 {
		b := others[e.rng.Intn(len(others))]
		pb = m.experts[b]
		bName = pb.Name
	}

	name := m.newbornName()
	child, err := evolve.Spawn(name, m.experts[a], pb, e.hist, e.rng, e.cfg)
	if err != nil {
		return
	}
	parents := []string{m.experts[a].Name}
	if bName != "" {
		parents = append(parents, bName)
	}
	m.addPoolExpert(child, a, parents)
}

// usableExcept lists the indices of usable experts other than a.
func (m *Mixture) usableExcept(a int) []int {
	var out []int
	for k := range m.experts {
		if k != a && m.health.usable(k) {
			out = append(out, k)
		}
	}
	return out
}

// newbornName returns a pool-unique name for the next newborn.
func (m *Mixture) newbornName() string {
	name := fmt.Sprintf("ev%d", m.evo.births+1)
	for m.nameTaken(name) {
		name += "+"
	}
	return name
}

func (m *Mixture) nameTaken(name string) bool {
	for _, e := range m.experts {
		if e.Name == name {
			return true
		}
	}
	return false
}

// addPoolExpert admits a newborn: appended to the pool, registered with
// every parallel structure, and placed on probation so it must earn good
// standing through the same clean-prediction run a re-admitted quarantined
// expert serves. parent seeds the selector's new slot with the parent's
// learned region.
func (m *Mixture) addPoolExpert(child *expert.Expert, parent int, parents []string) {
	e := m.evo
	m.experts = append(m.experts, child)
	m.health.addExpert()
	if rs, ok := m.selector.(resizableSelector); ok {
		rs.addExpert(parent)
	}
	m.accurate = append(m.accurate, 0)
	m.observations = append(m.observations, 0)
	m.errSum = append(m.errSum, 0)
	if m.pendingValid {
		// The newborn is scored from the very next observation, like
		// everyone else: give it a pending prediction for the pending state.
		m.pendingPred = append(m.pendingPred, child.PredictEnv(m.pendingFeat))
	}
	e.niche.AddExpert()
	e.born = append(e.born, e.decisions)
	e.seedIdx = append(e.seedIdx, -1)
	e.parents = append(e.parents, parents)
	e.births++
	e.epoch++
	e.events = append(e.events, telemetry.PoolEvent{Kind: "birth", Expert: child.Name, Parents: parents})
	m.poolShapeChanged()
}

// removePoolExpert retires expert k, splicing it out of every parallel
// structure. Its accumulated selection count moves to retiredSel so the
// mixture's decision total is conserved.
func (m *Mixture) removePoolExpert(k int) {
	e := m.evo
	name := m.experts[k].Name

	m.experts = append(m.experts[:k], m.experts[k+1:]...)
	m.health.removeExpert(k)
	if rs, ok := m.selector.(resizableSelector); ok {
		rs.removeExpert(k)
	}
	m.accurate = append(m.accurate[:k], m.accurate[k+1:]...)
	m.observations = append(m.observations[:k], m.observations[k+1:]...)
	m.errSum = append(m.errSum[:k], m.errSum[k+1:]...)
	if m.pendingValid {
		m.pendingPred = append(m.pendingPred[:k], m.pendingPred[k+1:]...)
	}
	e.niche.RemoveExpert(k)
	e.born = append(e.born[:k], e.born[k+1:]...)
	e.seedIdx = append(e.seedIdx[:k], e.seedIdx[k+1:]...)
	e.parents = append(e.parents[:k], e.parents[k+1:]...)

	// Re-index the selection histogram: bins above k shift down, bin k's
	// count is banked.
	counts := m.selections.Counts()
	remapped := make(map[int]int, len(counts))
	for bin, c := range counts {
		switch {
		case bin == k:
			e.retiredSel += c
		case bin > k:
			remapped[bin-1] += c
		default:
			remapped[bin] += c
		}
	}
	m.selections = stats.NewHistogramFromCounts(remapped)

	e.retirements++
	e.epoch++
	e.events = append(e.events, telemetry.PoolEvent{Kind: "retire", Expert: name})
	m.poolShapeChanged()
}

// poolShapeChanged invalidates everything sized to the pool: the fast-path
// scratch is rebuilt on next use, and detail capture re-baselines its
// health-state diff (the transition stream resumes one decision later).
func (m *Mixture) poolShapeChanged() {
	m.fast = nil
	m.fastPrimed = false
	if det := m.detail; det != nil {
		det.states = det.states[:0]
	}
}

// evoFinishDecide is the lifecycle tail of Decide: stash the committed
// thread count for behavior cloning, count the decision, fire the periodic
// lifecycle step, and expose pool telemetry.
func (m *Mixture) evoFinishDecide(n int, suspect bool, selected int, sel *features.Vector) {
	e := m.evo
	if selected >= 0 {
		e.niche.ObserveSelection(selected, expert.NicheOf(sel))
	}
	if !suspect {
		e.pendingThreads = n
	}
	e.decisions++
	if e.decisions%e.cfg.Period == 0 {
		m.evoLifecycle()
	}
}
