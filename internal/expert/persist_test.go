package expert

import (
	"os"
	"path/filepath"
	"testing"

	"moe/internal/features"
	"moe/internal/regress"
)

func TestMarshalRoundTripCanonical(t *testing.T) {
	set := Canonical4()
	data, err := MarshalSet(set)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(set) {
		t.Fatalf("round trip lost experts: %d vs %d", len(back), len(set))
	}
	// Predictions identical at a few states.
	states := []features.Vector{
		{},
		{0.032, 0.026, 0.2, 4, 8, 16, 4.76, 2.17, 1.11, 1.65},
		{0.045, 0.013, 0.1, 12, 12, 6, 2.73, 2.17, 0.01, 1.21},
	}
	for i := range set {
		for _, f := range states {
			if set[i].PredictThreads(f, 0) != back[i].PredictThreads(f, 0) {
				t.Errorf("expert %s thread prediction changed after round trip", set[i].Name)
			}
			if set[i].PredictEnv(f).Norm != back[i].PredictEnv(f).Norm {
				t.Errorf("expert %s env prediction changed after round trip", set[i].Name)
			}
		}
	}
}

func TestMarshalRoundTripVectorModel(t *testing.T) {
	var vm VectorEnvModel
	for i := range vm.Models {
		vm.Models[i] = flatModel(float64(i + 1))
		vm.Sigma[i] = float64(i+1) / 2
	}
	sw := make([]float64, speedupBasisDim)
	sw[features.Dim] = 1
	sw[features.Dim+1] = -0.05
	e := &Expert{
		Name:       "V",
		Threads:    flatModel(5),
		Speedup:    &SpeedupModel{Model: &regress.Model{Weights: sw}},
		Env:        vm,
		MaxThreads: 16,
		TrainedOn:  "test",
	}
	e.FeatMean[3] = 7
	e.FeatStd[3] = 2
	data, err := MarshalSet(Set{e})
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSet(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back[0]
	if b.Speedup == nil {
		t.Fatal("speedup model lost")
	}
	if b.FeatMean[3] != 7 || b.FeatStd[3] != 2 {
		t.Error("feature statistics lost")
	}
	bm, ok := b.Env.(VectorEnvModel)
	if !ok {
		t.Fatal("vector env model lost")
	}
	if bm.Sigma[2] != 1.5 {
		t.Errorf("sigma lost: %v", bm.Sigma)
	}
	var f features.Vector
	if e.PredictEnv(f).Error(features.Env{}) != b.PredictEnv(f).Error(features.Env{}) {
		t.Error("gating error changed after round trip")
	}
}

func TestSaveLoadSet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "experts.json")
	if err := SaveSet(Canonical4(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	set, err := LoadSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Errorf("loaded %d experts", len(set))
	}
	if _, err := LoadSet(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSet([]byte("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := UnmarshalSet([]byte(`{"version": 9, "experts": []}`)); err == nil {
		t.Error("unknown version should error")
	}
	if _, err := UnmarshalSet([]byte(`{"version": 1, "experts": [{"name":"x","max_threads":4,"threads":[1,2]}]}`)); err == nil {
		t.Error("expert without environment model should error")
	}
}
