package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"moe"
	"moe/internal/checkpoint"
	"moe/internal/features"
	"moe/internal/replica"
	"moe/internal/telemetry"
)

// Server is the decision daemon: the tenant registry plus the robustness
// envelope (admission, deadlines, breakers, watchdog, drain) around it.
// Create with NewServer, serve via Handler, stop via Drain (graceful) or
// Close (immediate).
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	mux     *http.ServeMux
	bucket  *tokenBucket
	slots   *slots
	tn      tenants
	metrics serverMetrics
	stream  streamMetrics
	jit     *jitter

	// gcommit amortizes journal fsyncs across tenants when GroupCommitWindow
	// is set (nil otherwise; stores then fsync per append as before).
	gcommit *checkpoint.GroupCommitter

	// Streaming transport state: registered listeners (ServeStream) and open
	// sessions. Close closes listeners; Drain closes sessions last, after
	// their in-flight frames were flushed through the inflight group.
	sessMu     sync.Mutex
	sessions   map[net.Conn]struct{}
	listeners  []net.Listener
	sessClosed bool

	// Replication roles (both nil on a standalone server). A server may be
	// both at once — a promoted standby chaining to its own standby.
	primary *replica.Primary
	standby *replica.Standby
	// serving gates the decision path: false while in standby role (flips
	// true at promotion). promoted holds the fencing term this server was
	// promoted at (0 = never), floored into every store run it opens.
	serving  atomic.Bool
	promoted atomic.Uint64

	inflight sync.WaitGroup
	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	logf     func(format string, args ...any)
}

// NewServer builds a server from cfg and starts its watchdog. The caller
// owns shutdown: Drain for the graceful path, Close to just stop the
// watchdog (tests, error paths).
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		bucket: newTokenBucket(cfg.Rate, cfg.Burst),
		slots:  newSlots(cfg.MaxInflight),
		tn:     tenants{m: make(map[string]*tenant)},
		jit:    newJitter(cfg.JitterSeed),
		stop:   make(chan struct{}),
		logf:   cfg.Logf,
	}
	s.serving.Store(!cfg.Standby)
	if cfg.ReplicateTo != "" {
		s.primary = replica.NewPrimary(cfg.ReplicateTo, cfg.Registry, cfg.Logf)
		s.primary.SetTerm(cfg.ReplicaTerm)
	}
	// Tenant IDs are caller-controlled; cap the labeled series they can
	// mint and make the overflow visible (satellite: cardinality cap).
	s.reg.SetSeriesLimit(cfg.MaxTenantSeries, "serve_labels_dropped_total")
	s.metrics.init(s.reg)
	s.stream.init(s.reg)
	if cfg.CheckpointSync && cfg.GroupCommitWindow > 0 {
		s.gcommit = checkpoint.NewGroupCommitter(cfg.GroupCommitWindow)
		s.gcommit.SetMetrics(s.stream.gcFsyncs, s.stream.gcSaved)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/tenants", s.handleTenants)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Standby {
		sb, err := replica.NewStandby(cfg.CheckpointRoot, cfg.CheckpointSync, cfg.Registry, cfg.Logf)
		if err != nil {
			return nil, err
		}
		s.standby = sb
		s.mux.Handle("/replica/v1/", sb.Handler())
		s.mux.HandleFunc("/v1/promote", s.handlePromote)
	}
	s.mux.Handle("/", telemetry.Mux(s.reg)) // /metrics, /metrics.json, /debug/pprof
	go s.watchdogLoop()
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metric registry (harnesses read shed/deadline/
// breaker counts from it).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// GroupCommitStats reports journal fsyncs issued and saved by the group
// committer; zeros when group commit is off.
func (s *Server) GroupCommitStats() (fsyncs, saved int64) {
	if s.gcommit == nil {
		return 0, 0
	}
	return s.gcommit.Stats()
}

// Close stops the watchdog and closes stream listeners without draining.
// Safe to call more than once and after Drain. Open stream sessions are
// left to finish (Drain closes them; a process exit kills them anyway).
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.closeStreamListeners()
}

// serverMetrics is the daemon-level serve_* family set (per-tenant series
// live on the tenant).
type serverMetrics struct {
	reg              *telemetry.Registry
	decisions        *telemetry.Counter
	deadlineExceeded *telemetry.Counter
	panics           *telemetry.Counter
	breakerTrips     *telemetry.Counter
	recycles         *telemetry.Counter
	resumeFailures   *telemetry.Counter
	dedupHits        *telemetry.Counter
	tenants          *telemetry.Gauge
	inflight         *telemetry.Gauge
	drainSeconds     *telemetry.Gauge
	drainClean       *telemetry.Gauge
	requestSeconds   *telemetry.Histogram

	mu    sync.Mutex
	codes map[int]*telemetry.Counter
	sheds map[string]*telemetry.Counter
}

func (m *serverMetrics) init(reg *telemetry.Registry) {
	m.reg = reg
	m.decisions = reg.Counter("serve_decisions_total", "Decisions served across all tenants.")
	m.deadlineExceeded = reg.Counter("serve_deadline_exceeded_total", "Requests that missed their deadline (504).")
	m.panics = reg.Counter("serve_panics_recovered_total", "Tenant decision panics recovered by the envelope.")
	m.breakerTrips = reg.Counter("serve_breaker_trips_total", "Tenant circuit-breaker openings.")
	m.recycles = reg.Counter("serve_watchdog_recycles_total", "Wedged tenant generations recycled by the watchdog.")
	m.resumeFailures = reg.Counter("serve_resume_failures_total", "Checkpoint resumes abandoned (poison or wedged journal replay).")
	m.dedupHits = reg.Counter("serve_dedup_hits_total", "Requests answered from the idempotency window.")
	m.tenants = reg.Gauge("serve_tenants", "Registered tenants.")
	m.inflight = reg.Gauge("serve_inflight", "Decision requests currently holding a slot.")
	m.drainSeconds = reg.Gauge("serve_drain_seconds", "Duration of the last drain.")
	m.drainClean = reg.Gauge("serve_drain_clean", "1 when the last drain checkpointed every persistent tenant in the window.")
	m.requestSeconds = reg.Histogram("serve_request_seconds", "Decision request latency, admission to response.", nil)
	m.codes = make(map[int]*telemetry.Counter)
	m.sheds = make(map[string]*telemetry.Counter)
}

func (m *serverMetrics) code(status int) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.codes[status]
	if c == nil {
		c = m.reg.Counter("serve_requests_total", "Decision requests by response code.",
			"code", strconv.Itoa(status))
		m.codes[status] = c
	}
	return c
}

func (m *serverMetrics) shed(reason string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.sheds[reason]
	if c == nil {
		c = m.reg.Counter("serve_shed_total", "Requests shed by admission control, by reason.",
			"reason", reason)
		m.sheds[reason] = c
	}
	return c
}

// apiError is a refusal on its way to the wire.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

// shed counts a refusal under reason and shapes it into the response. Every
// Retry-After hint leaving here is jittered (+U[0, hint/2)) so a cohort
// shed together does not return together.
func (s *Server) shed(reason string, status int, msg string, retryAfter time.Duration) *apiError {
	s.metrics.shed(reason).Inc()
	return &apiError{status: status, code: reason, msg: msg, retryAfter: s.jit.spread(retryAfter)}
}

func (s *Server) deadline() *apiError {
	s.metrics.deadlineExceeded.Inc()
	return &apiError{status: http.StatusGatewayTimeout, code: "deadline-exceeded", msg: "request deadline exceeded"}
}

// Wire format.
type decideRequest struct {
	Tenant       string        `json:"tenant"`
	Observations []observation `json:"observations"`
	// RequestID makes the request idempotent within the tenant's dedup
	// window: a retry carrying the same ID returns the original decisions
	// instead of re-advancing the runtime. The X-Request-Id header is an
	// equivalent spelling for single-JSON bodies.
	RequestID string `json:"request_id,omitempty"`
}

type observation struct {
	Time           float64   `json:"time"`
	Features       []float64 `json:"features"`
	Rate           float64   `json:"rate,omitempty"`
	RegionStart    bool      `json:"region_start,omitempty"`
	AvailableProcs int       `json:"available_procs,omitempty"`
}

type decideResponse struct {
	Tenant    string `json:"tenant"`
	Threads   []int  `json:"threads"`
	Decisions int64  `json:"decisions"`
	// Deduped marks a response answered from the idempotency window: these
	// are the decisions originally acked under this request ID, and the
	// runtime did not advance again.
	Deduped bool `json:"deduped,omitempty"`
}

type errorResponse struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func (o *observation) toObs() (moe.Observation, error) {
	if len(o.Features) > features.Dim {
		return moe.Observation{}, fmt.Errorf("observation has %d features, max %d", len(o.Features), features.Dim)
	}
	obs := moe.Observation{
		Time:           o.Time,
		Rate:           o.Rate,
		RegionStart:    o.RegionStart,
		AvailableProcs: o.AvailableProcs,
	}
	copy(obs.Features[:], o.Features)
	return obs, nil
}

func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	var retryMs int64
	if e.retryAfter > 0 {
		secs := int64(e.retryAfter+time.Second-1) / int64(time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		retryMs = e.retryAfter.Milliseconds()
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(errorResponse{Error: e.msg, Code: e.code, RetryAfterMs: retryMs})
}

// requestDeadline resolves the per-request deadline: X-Deadline-Ms capped
// by MaxDeadline, DefaultDeadline when absent or unparsable.
func (s *Server) requestDeadline(r *http.Request) time.Duration {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// handleDecide is the decision endpoint. Admission runs once per HTTP
// request, in fixed order — drain gate, token bucket (429), slot pool
// (503) — before any tenant state is touched. The body is either a single
// JSON request or, with Content-Type application/x-ndjson, a stream of
// them served in order on one connection (each line gets its own deadline;
// errors are reported per line and do not end the stream).
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() {
		s.metrics.code(status).Inc()
		s.metrics.requestSeconds.Observe(time.Since(start).Seconds())
	}()
	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		s.writeError(w, &apiError{status: status, code: "method-not-allowed", msg: "POST required"})
		return
	}
	// Join the in-flight group before reading the drain gate: Drain sets
	// the gate and then waits on the group, so this order guarantees every
	// request that passes the gate is flushed (and journaled) before the
	// final per-tenant snapshots — never half-drained.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		e := s.shed("draining", http.StatusServiceUnavailable, "server is draining", time.Second)
		status = e.status
		s.writeError(w, e)
		return
	}
	// Role gates: a standby holds replicated lineages but no live runtimes
	// until promoted; a deposed primary must stop acking decisions the
	// moment a promoted standby fences it — acks here would fork history.
	if !s.serving.Load() {
		e := s.shed("standby", http.StatusServiceUnavailable, "standby; not serving until promoted", time.Second)
		status = e.status
		s.writeError(w, e)
		return
	}
	if s.primary != nil && s.primary.Deposed() {
		e := s.shed("deposed", http.StatusServiceUnavailable, "deposed by promoted standby", time.Second)
		status = e.status
		s.writeError(w, e)
		return
	}
	if ok, retry := s.bucket.take(time.Now()); !ok {
		e := s.shed("rate", http.StatusTooManyRequests, "request rate over limit", retry)
		status = e.status
		s.writeError(w, e)
		return
	}
	if !s.slots.tryAcquire() {
		e := s.shed("capacity", http.StatusServiceUnavailable, "all decision slots busy", 100*time.Millisecond)
		status = e.status
		s.writeError(w, e)
		return
	}
	s.metrics.inflight.Set(float64(s.slots.inUse()))
	defer func() {
		s.slots.release()
		s.metrics.inflight.Set(float64(s.slots.inUse()))
	}()

	deadline := s.requestDeadline(r)
	// Parse the media type properly: "application/x-ndjson; charset=utf-8"
	// is NDJSON too, and an exact string match would silently mis-route it
	// to the single-JSON path (where the second line is trailing garbage).
	if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == "application/x-ndjson" {
		s.serveNDJSON(w, r, deadline)
		return
	}
	var req decideRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		status = http.StatusBadRequest
		s.writeError(w, &apiError{status: status, code: "bad-request", msg: "malformed JSON: " + err.Error()})
		return
	}
	if req.RequestID == "" {
		req.RequestID = r.Header.Get("X-Request-Id")
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	resp, aerr := s.serveOne(ctx, &req)
	if aerr != nil {
		status = aerr.status
		s.writeError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// serveNDJSON runs a stream of request lines through the decision path in
// order, one response line per request line. All lines are read before the
// first is served — net/http tears down the request body once the response
// starts — so the HTTP status is committed at the first line and per-line
// failures travel in the line objects (code field) instead.
func (s *Server) serveNDJSON(w http.ResponseWriter, r *http.Request, deadline time.Duration) {
	const maxLines = 4096
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	var reqs []decideRequest
	var decodeErr, decodeCode string
	for {
		var req decideRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				decodeErr, decodeCode = "malformed NDJSON line: "+err.Error(), "bad-request"
			}
			break
		}
		if len(reqs) == maxLines {
			// Never truncate silently: the client must learn its lines past
			// the cap were not served, or it will treat the stream as fully
			// acked. Served lines still get their responses below.
			decodeErr = fmt.Sprintf("stream over the %d-line cap; later lines not served", maxLines)
			decodeCode = "too-many-lines"
			break
		}
		reqs = append(reqs, req)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range reqs {
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		resp, aerr := s.serveOne(ctx, &reqs[i])
		cancel()
		if aerr != nil {
			enc.Encode(errorResponse{Error: aerr.msg, Code: aerr.code, RetryAfterMs: aerr.retryAfter.Milliseconds()})
		} else {
			enc.Encode(resp)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if decodeErr != "" {
		enc.Encode(errorResponse{Error: decodeErr, Code: decodeCode})
	}
}

// serveOne validates and serves a single decide request body.
func (s *Server) serveOne(ctx context.Context, req *decideRequest) (*decideResponse, *apiError) {
	if len(req.Observations) == 0 {
		return nil, &apiError{status: 400, code: "bad-request", msg: "no observations"}
	}
	if len(req.Observations) > s.cfg.MaxBatch {
		return nil, &apiError{status: 400, code: "bad-request",
			msg: fmt.Sprintf("batch of %d observations over the %d cap", len(req.Observations), s.cfg.MaxBatch)}
	}
	obs := make([]moe.Observation, len(req.Observations))
	for i := range req.Observations {
		o, err := req.Observations[i].toObs()
		if err != nil {
			return nil, &apiError{status: 400, code: "bad-request", msg: err.Error()}
		}
		obs[i] = o
	}
	if len(req.RequestID) > maxRequestID {
		return nil, &apiError{status: 400, code: "bad-request",
			msg: fmt.Sprintf("request_id of %d bytes over the %d cap", len(req.RequestID), maxRequestID)}
	}
	t, aerr := s.tenant(req.Tenant)
	if aerr != nil {
		return nil, aerr
	}
	res, aerr := s.decideTenant(ctx, t, req.RequestID, obs)
	if aerr != nil {
		return nil, aerr
	}
	if res.deduped {
		return &decideResponse{Tenant: t.id, Threads: res.threads,
			Decisions: res.decisions, Deduped: true}, nil
	}
	t.mu.Lock()
	served := t.served
	t.mu.Unlock()
	return &decideResponse{Tenant: t.id, Threads: res.threads, Decisions: served}, nil
}

// maxRequestID bounds client request IDs (they are journaled).
const maxRequestID = 128

// decideResult is what the decide goroutine hands back (or leaves behind,
// if the handler gave up on it).
type decideResult struct {
	threads   []int
	decisions int64 // runtime's lifetime decision count (survives resume)
	panicked  string
	// deposed: the commit flush was refused by a promoted standby. The
	// decision ran locally but must NOT be acked — an ack here would fork
	// acked history between the fenced primary and the new one.
	deposed bool
	// deduped: answered from the idempotency window; the runtime did not
	// advance and decisions holds the original ack's count.
	deduped bool
}

// decideTenant runs one batch on tenant t: breaker gate, core (re)build,
// the tenant's single decision slot, then the batch itself — all bounded
// by ctx.
func (s *Server) decideTenant(ctx context.Context, t *tenant, reqID string, obs []moe.Observation) (*decideResult, *apiError) {
	t.mu.Lock()
	ok, retry := t.brk.admit(time.Now())
	t.setStateLocked()
	t.mu.Unlock()
	if !ok {
		return nil, s.shed("quarantined", http.StatusServiceUnavailable, "tenant quarantined after fault", retry)
	}
	for attempt := 0; ; attempt++ {
		core, aerr := s.ensureCore(ctx, t)
		if aerr != nil {
			return nil, aerr
		}
		select {
		case core.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, s.deadline()
		}
		// The generation may have been recycled while we waited on its
		// slot; serving on it would resurrect an abandoned timeline.
		t.mu.Lock()
		stale := t.core != core
		if !stale {
			t.busySince = time.Now()
		}
		t.mu.Unlock()
		if stale {
			<-core.sem
			if attempt < 2 {
				continue
			}
			return nil, s.shed("recycled", http.StatusServiceUnavailable, "tenant recycling", s.cfg.BreakerBackoff)
		}
		// Idempotency check, under the decision slot and after the core (and
		// with it the journal-recovered window) exists: a request ID we
		// already acked answers from the window — the runtime must not
		// advance twice for one logical request, whether the retry hits this
		// process, a restarted one, or a promoted standby. Holding the slot
		// serializes the lookup against a concurrent twin's commit.
		if reqID != "" {
			t.mu.Lock()
			hit, ok := t.dedup.lookup(reqID)
			if ok {
				t.busySince = time.Time{}
			}
			t.mu.Unlock()
			if ok {
				<-core.sem
				s.metrics.dedupHits.Inc()
				return &decideResult{threads: hit.Threads, decisions: int64(hit.Decisions), deduped: true}, nil
			}
		}
		return s.runDecide(ctx, t, core, reqID, obs)
	}
}

// runDecide executes the batch in its own goroutine so the handler can
// abandon it at the deadline without killing it: the decision keeps
// running (the watchdog deals with it if it never finishes), bookkeeping
// happens in finishDecide either way, and the tenant's slot is released
// only when the batch is truly done.
func (s *Server) runDecide(ctx context.Context, t *tenant, core *tenantCore, reqID string, obs []moe.Observation) (*decideResult, *apiError) {
	done := make(chan *decideResult, 1)
	go func() {
		res := &decideResult{}
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.panicked = fmt.Sprint(p)
					res.threads = nil
				}
			}()
			res.threads = core.rt.DecideBatch(obs)
			res.decisions = int64(core.rt.Decisions())
		}()
		// Commit before the handler is released: the dedup marker must be
		// journaled behind the batch's own entries, and the replication
		// group must be flushed, before the client can see the ack.
		s.commitBatch(t, core, reqID, res)
		s.finishDecide(t, core, res)
		done <- res
		<-core.sem
	}()
	select {
	case res := <-done:
		if res.panicked != "" {
			return nil, &apiError{status: http.StatusInternalServerError, code: "tenant-fault",
				msg: "tenant decision faulted; tenant quarantined", retryAfter: s.jit.spread(s.cfg.BreakerBackoff)}
		}
		if res.deposed {
			return nil, s.shed("deposed", http.StatusServiceUnavailable,
				"deposed by promoted standby; decision not acknowledged", time.Second)
		}
		return res, nil
	case <-ctx.Done():
		// The batch may still be running — or wedged. It owns the slot and
		// the generation until it finishes or the watchdog recycles it.
		return nil, s.deadline()
	}
}

// handleTenants lists tenants and their envelope state, sorted by ID.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	type tenantInfo struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		Gen       int    `json:"gen"`
		Decisions int64  `json:"decisions"`
		Recycles  int    `json:"recycles"`
		Trips     int    `json:"breaker_trips"`
		Degraded  string `json:"degraded,omitempty"`
	}
	list := s.tn.snapshot()
	out := make([]tenantInfo, 0, len(list))
	for _, t := range list {
		t.mu.Lock()
		out = append(out, tenantInfo{
			ID:        t.id,
			State:     t.brk.state.String(),
			Gen:       t.gen,
			Decisions: t.served,
			Recycles:  t.recycles,
			Trips:     t.brk.trips,
			Degraded:  t.degraded,
		})
		t.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}
