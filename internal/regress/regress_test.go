package regress

import (
	"math"
	"testing"
	"testing/quick"

	"moe/internal/trace"
)

// genLinear builds samples from a known linear model plus optional noise.
func genLinear(weights []float64, bias float64, n int, noise float64, seed uint64) []Sample {
	rng := trace.NewRNG(seed)
	out := make([]Sample, n)
	for i := range out {
		x := make([]float64, len(weights))
		y := bias
		for j := range x {
			x[j] = rng.Range(-5, 5)
			y += weights[j] * x[j]
		}
		if noise > 0 {
			y += rng.Norm() * noise
		}
		out[i] = Sample{X: x, Y: y}
	}
	return out
}

func TestFitRecoversExactModel(t *testing.T) {
	weights := []float64{2, -1, 0.5}
	samples := genLinear(weights, 3, 50, 0, 1)
	m, err := Fit(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		if math.Abs(m.Weights[i]-w) > 1e-6 {
			t.Errorf("weight %d = %v, want %v", i, m.Weights[i], w)
		}
	}
	if math.Abs(m.Bias-3) > 1e-6 {
		t.Errorf("bias = %v, want 3", m.Bias)
	}
}

func TestFitRecoversUnderNoise(t *testing.T) {
	weights := []float64{1.5, -2}
	samples := genLinear(weights, 0.7, 2000, 0.1, 2)
	m, err := Fit(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		if math.Abs(m.Weights[i]-w) > 0.05 {
			t.Errorf("weight %d = %v, want ~%v", i, m.Weights[i], w)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Options{}); err == nil {
		t.Error("no samples should error")
	}
	if _, err := Fit([]Sample{{X: nil, Y: 1}}, Options{}); err == nil {
		t.Error("zero-dimensional should error")
	}
	if _, err := Fit([]Sample{{X: []float64{1}, Y: 1}, {X: []float64{1, 2}, Y: 2}}, Options{}); err == nil {
		t.Error("inconsistent dimensions should error")
	}
	if _, err := Fit([]Sample{{X: []float64{1, 2}, Y: 1}}, Options{Mask: []bool{true}}); err == nil {
		t.Error("wrong mask length should error")
	}
}

func TestFitSingularFallsBackToRidge(t *testing.T) {
	// Feature 1 is a copy of feature 0: the normal equations are
	// singular; the ridge retry must still produce a usable model.
	samples := make([]Sample, 20)
	rng := trace.NewRNG(3)
	for i := range samples {
		x := rng.Range(-1, 1)
		samples[i] = Sample{X: []float64{x, x}, Y: 3 * x}
	}
	m, err := Fit(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-3) > 1e-3 {
		t.Errorf("collinear fit predicts %v, want ~3", pred)
	}
}

func TestFitMaskZeroesExcludedWeights(t *testing.T) {
	samples := genLinear([]float64{2, 5}, 1, 100, 0, 4)
	mask := []bool{true, false}
	m, err := Fit(samples, Options{Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[1] != 0 {
		t.Errorf("masked weight should be 0, got %v", m.Weights[1])
	}
	// The model still accepts full-width inputs.
	if _, err := m.Predict([]float64{1, 2}); err != nil {
		t.Errorf("masked model rejected full-width input: %v", err)
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	m := &Model{Weights: []float64{1, 2}, Bias: 0}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("wrong input width should error")
	}
	got, err := m.Predict([]float64{1, 1})
	if err != nil || got != 3 {
		t.Errorf("Predict = %v (%v)", got, err)
	}
	if m.Dim() != 2 {
		t.Errorf("Dim = %d", m.Dim())
	}
}

func TestMustPredictPanicsOnMismatch(t *testing.T) {
	m := &Model{Weights: []float64{1}, Bias: 0}
	defer func() {
		if recover() == nil {
			t.Error("MustPredict should panic on width mismatch")
		}
	}()
	m.MustPredict([]float64{1, 2})
}

func TestCoefficientsRoundTrip(t *testing.T) {
	m := &Model{Weights: []float64{1, 2, 3}, Bias: 4}
	co := m.Coefficients()
	if len(co) != 4 || co[3] != 4 {
		t.Fatalf("Coefficients = %v", co)
	}
	back, err := FromCoefficients(co)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bias != 4 || back.Weights[2] != 3 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := FromCoefficients([]float64{1}); err == nil {
		t.Error("too-short coefficients should error")
	}
}

func TestFitInterpolatesExactlyProperty(t *testing.T) {
	// For any well-conditioned linear target, OLS on noiseless data
	// predicts held-out points of the same model exactly.
	f := func(w1, w2, b int8) bool {
		weights := []float64{float64(w1) / 10, float64(w2) / 10}
		samples := genLinear(weights, float64(b)/10, 60, 0, uint64(uint8(w1))+uint64(uint8(w2))*251+1)
		m, err := Fit(samples, Options{})
		if err != nil {
			return false
		}
		test := genLinear(weights, float64(b)/10, 10, 0, 777)
		for _, s := range test {
			pred, err := m.Predict(s.X)
			if err != nil || math.Abs(pred-s.Y) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
