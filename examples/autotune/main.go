// Autotune: real execution — the mixture (with the paper's published
// Table 1 experts, no training needed) decides, per parallel region, how
// many goroutines three real kernels should fan out to, reading live Go
// runtime metrics. Background load arrives halfway through; watch the
// worker counts adapt.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync/atomic"
	"time"

	"moe"
)

func main() {
	mixture, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := moe.NewTuner(mixture, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}

	kernels := []struct {
		name   string
		kernel moe.Kernel
		items  int
	}{
		{"blackscholes (compute-bound)", moe.NewBlackScholesKernel(200_000), 200_000},
		{"spmv (memory-bound)", moe.NewSparseMatVecKernel(100_000, 16), 100_000},
		{"stencil (sync-sensitive)", moe.NewStencilKernel(400_000), 400_000},
	}

	// Background load: after half the regions, spin goroutines that
	// compete for the CPUs — the "external workload" of the paper.
	var stop atomic.Bool
	startLoad := func(n int) {
		for i := 0; i < n; i++ {
			go func() {
				x := 1.0
				for !stop.Load() {
					for j := 0; j < 1_000_000; j++ {
						x = x*1.0000001 + 0.5
					}
					runtime.Gosched()
				}
				_ = x
			}()
		}
	}
	defer stop.Store(true)

	const regionsPerKernel = 12
	for _, k := range kernels {
		fmt.Printf("\n%s, %d regions of %d items:\n", k.name, regionsPerKernel, k.items)
		for r := 0; r < regionsPerKernel; r++ {
			if r == regionsPerKernel/2 {
				fmt.Println("  -- background load arrives (4 spinner goroutines) --")
				startLoad(4)
				time.Sleep(50 * time.Millisecond)
			}
			res := tuner.ExecuteRegion(k.kernel, k.items)
			fmt.Printf("  region %2d: %2d workers, %8.0f items/s (%.1f ms)\n",
				r, res.Workers, res.Rate, res.Duration.Seconds()*1000)
			if s, ok := k.kernel.(interface{ Swap() }); ok {
				s.Swap()
			}
		}
		stop.Store(true)
		time.Sleep(20 * time.Millisecond)
		stop = atomic.Bool{}
	}

	fmt.Println("\nworker-count distribution across all regions:")
	for n, frac := range tuner.WorkerHistogram() {
		fmt.Printf("  %2d workers: %4.0f%%\n", n, 100*frac)
	}
}
