// Package serve is the multi-tenant decision daemon: it hosts many
// independent tenant runtimes — each a full moe.Runtime with its own
// checkpoint lineage under a per-tenant directory and its own telemetry
// label set — behind one HTTP/NDJSON decision API, and wraps them in a
// robustness envelope so no tenant can take the service, or any other
// tenant, down with it.
//
// The envelope, outermost first (DESIGN.md §13):
//
//   - Admission control: a token bucket sheds sustained overload with
//     429 + Retry-After; a fixed slot pool bounds concurrent decision
//     requests and sheds the excess with 503. Shedding is explicit and
//     counted (serve_shed_total{reason}).
//   - Deadlines: every request carries a deadline (X-Deadline-Ms, capped)
//     propagated by context; a request that cannot be served in time gets
//     504 and is counted (serve_deadline_exceeded_total), whether it was
//     queued behind a slow tenant or the tenant wedged mid-decision.
//   - Per-tenant circuit breaker: a panic in one tenant's decision path is
//     recovered, quarantines that tenant with exponential backoff, and
//     re-admits it through probation — the tenant-granularity mirror of
//     the per-expert quarantine ladder in internal/core/health.go. Other
//     tenants never observe any of it.
//   - Watchdog: a tenant whose in-flight decision makes no progress past
//     the wedge budget is recycled — its generation abandoned, a fresh
//     runtime resumed from its last checkpoint on the next request.
//   - Graceful drain: stop admitting, flush in-flight batches, checkpoint
//     every tenant, all within a bounded window (cmd/moed wires SIGTERM to
//     it and exits 0 on a clean drain).
//
// Every request body routes through Runtime.DecideBatch, so the PR 6
// batched hot path carries the traffic; decisions are byte-identical to a
// solo Runtime fed the same observation stream, which is how the isolation
// tests prove fault containment.
package serve

import (
	"fmt"
	"time"

	"moe"
	"moe/internal/atomicio"
	"moe/internal/telemetry"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default (see the constants below); Rate 0 disables the token bucket.
type Config struct {
	// MaxThreads is the machine cap every tenant runtime is built with.
	MaxThreads int

	// PolicyBuild constructs the policy for a new tenant generation. It
	// must return a fresh policy per call — policies are stateful online
	// learners. Nil selects DefaultPolicyBuild (the canonical 4-expert
	// mixture).
	PolicyBuild func(tenant string) (moe.Policy, error)

	// CheckpointRoot is the directory holding one checkpoint lineage
	// subdirectory per tenant; empty disables persistence (tenants are
	// ephemeral).
	CheckpointRoot string
	// CheckpointEvery is the snapshot cadence in decisions (0 = journal
	// only).
	CheckpointEvery int
	// CheckpointSync fsyncs every journal append. Off by default: the
	// daemon trades the journal tail in the page cache for serving
	// throughput; snapshots stay atomic and fsynced either way.
	CheckpointSync bool
	// GroupCommitWindow, with CheckpointSync on, amortizes journal fsyncs:
	// appends defer the fsync and every batch commits through one shared
	// fsync per flush window (commit-before-ack unchanged — the sync still
	// happens before any ack leaves). Zero keeps per-append fsync.
	GroupCommitWindow time.Duration

	// MaxTenants bounds the registry; creation past it sheds with 503.
	MaxTenants int
	// MaxInflight bounds concurrent decision requests (the slot pool).
	MaxInflight int
	// Rate is the token-bucket refill in requests/second; 0 = unlimited.
	Rate float64
	// Burst is the bucket depth; 0 derives it from Rate.
	Burst int

	// DefaultDeadline applies when a request carries no X-Deadline-Ms;
	// MaxDeadline caps what the header may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBatch bounds observations per request body.
	MaxBatch int

	// WedgeTimeout is how long an in-flight decision may run before the
	// watchdog declares the tenant wedged and recycles it. It also bounds
	// checkpoint resume during tenant (re)builds.
	WedgeTimeout time.Duration
	// WatchdogInterval is the sweep cadence.
	WatchdogInterval time.Duration

	// DrainWindow bounds Drain when the caller passes no explicit window.
	DrainWindow time.Duration

	// BreakerBackoff is the first quarantine duration after a tenant
	// panic; it doubles per re-trip up to BreakerBackoffMax.
	BreakerBackoff    time.Duration
	BreakerBackoffMax time.Duration
	// ProbationRequests is how many consecutively clean requests re-admit
	// a quarantined tenant to good standing.
	ProbationRequests int

	// MaxTenantSeries caps per-family tenant label sets in the registry
	// (tenant IDs are unbounded); overflow lands in
	// serve_labels_dropped_total.
	MaxTenantSeries int

	// ReplicateTo, when set, makes this server a replicating primary: every
	// committed checkpoint artifact is shipped per tenant to the standby at
	// this base URL (scheme + host), flushed as one group per batch before
	// the client is acked. See internal/replica.
	ReplicateTo string
	// ReplicaTerm is the fencing term stamped on shipped groups; 0 means 1.
	// A process promoted out of standby restarts with the promoted term.
	ReplicaTerm uint64
	// Standby makes this server a hot standby: it mounts the replication
	// endpoints, applies incoming lineages under CheckpointRoot (required),
	// and sheds decision traffic with 503 until promoted via /v1/promote.
	Standby bool

	// DedupWindow is how many idempotent request IDs (X-Request-Id /
	// request_id) each tenant remembers, journaled with the batches so the
	// window survives restart and failover. 0 selects DefDedupWindow;
	// negative disables deduplication.
	DedupWindow int

	// DisableStreamCoalesce turns off request coalescing on the streaming
	// transport: concurrent frames for one tenant run one DecideBatch per
	// frame instead of merging under the tenant's decision slot. Decisions
	// are byte-identical either way (the PR 6 batch contract); this exists
	// as the benchmark ablation arm.
	DisableStreamCoalesce bool

	// JitterSeed seeds the deterministic stream that spreads Retry-After
	// hints (each shed hint gets + U[0, hint/2)), so shed clients do not
	// retry in lockstep. 0 selects DefJitterSeed; tests pick fixed seeds
	// for reproducibility.
	JitterSeed uint64

	// JournalFault, when set, installs a per-tenant fault hook on every
	// tenant store's journal write path (disk-fault injection; tests only).
	JournalFault func(tenant string) atomicio.FaultFn

	// Registry receives the serve_* metric families; nil creates one.
	Registry *telemetry.Registry
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Defaults for zero Config fields.
const (
	DefMaxThreads        = 32
	DefCheckpointEvery   = 64
	DefMaxTenants        = 4096
	DefMaxInflight       = 64
	DefDefaultDeadline   = 2 * time.Second
	DefMaxDeadline       = 30 * time.Second
	DefMaxBatch          = 1024
	DefWedgeTimeout      = 5 * time.Second
	DefDrainWindow       = 10 * time.Second
	DefBreakerBackoff    = 500 * time.Millisecond
	DefBreakerBackoffMax = 30 * time.Second
	DefProbationRequests = 3
	DefMaxTenantSeries   = 512
	DefDedupWindow       = 128
	DefJitterSeed        = 1
)

// withDefaults fills zero fields; it does not mutate the caller's copy.
func (c Config) withDefaults() (Config, error) {
	if c.MaxThreads == 0 {
		c.MaxThreads = DefMaxThreads
	}
	if c.MaxThreads < 1 {
		return c, fmt.Errorf("serve: MaxThreads must be at least 1, got %d", c.MaxThreads)
	}
	if c.PolicyBuild == nil {
		c.PolicyBuild = DefaultPolicyBuild
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = DefCheckpointEvery
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("serve: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = DefMaxTenants
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = DefMaxInflight
	}
	if c.MaxInflight < 1 {
		return c, fmt.Errorf("serve: MaxInflight must be at least 1, got %d", c.MaxInflight)
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = DefDefaultDeadline
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = DefMaxDeadline
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefMaxBatch
	}
	if c.WedgeTimeout == 0 {
		c.WedgeTimeout = DefWedgeTimeout
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = c.WedgeTimeout / 4
		if c.WatchdogInterval < time.Millisecond {
			c.WatchdogInterval = time.Millisecond
		}
	}
	if c.DrainWindow == 0 {
		c.DrainWindow = DefDrainWindow
	}
	if c.BreakerBackoff == 0 {
		c.BreakerBackoff = DefBreakerBackoff
	}
	if c.BreakerBackoffMax == 0 {
		c.BreakerBackoffMax = DefBreakerBackoffMax
	}
	if c.ProbationRequests == 0 {
		c.ProbationRequests = DefProbationRequests
	}
	if c.MaxTenantSeries == 0 {
		c.MaxTenantSeries = DefMaxTenantSeries
	}
	if c.Standby && c.CheckpointRoot == "" {
		return c, fmt.Errorf("serve: Standby requires CheckpointRoot (lineages must land on disk)")
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = DefDedupWindow
	}
	if c.DedupWindow < 0 {
		c.DedupWindow = 0 // explicit opt-out
	}
	if c.GroupCommitWindow < 0 {
		c.GroupCommitWindow = 0
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = DefJitterSeed
	}
	if c.ReplicaTerm == 0 {
		c.ReplicaTerm = 1
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// DefaultPolicyBuild gives every tenant a fresh mixture over the paper's
// canonical Table 1 experts — instant to construct (no training pass), and
// exactly what a solo Runtime in the golden tests wraps, which is what
// makes server-vs-solo byte-identity checks meaningful.
func DefaultPolicyBuild(string) (moe.Policy, error) {
	return moe.NewMixture(moe.CanonicalExperts())
}
