package sim

import (
	"math"
	"testing"

	"moe/internal/trace"
	"moe/internal/workload"
)

// relClose reports whether a and b agree within the PR's equivalence
// tolerance: 1e-9 relative (absolute for magnitudes below 1). This is the
// budget for floating-point accumulation differences between iterated and
// closed-form stepping; see DESIGN.md §11.
func relClose(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// rateClose is the looser bound for *per-interval* instantaneous rates.
// Terminal observables (ExecTime, WorkDone, decision sequences) are held
// to 1e-9, but interval rates divide a ~0.5s work window, so a phase
// boundary landing a few ulps earlier in one mode shifts a sliver of work
// between adjacent windows — an oscillating, non-accumulating difference
// a couple of orders above the terminal tolerance on programs with many
// short regions (observed ≤6e-9 across the corpus and fuzz runs).
func rateClose(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-7*scale
}

// requireEquivalent runs the scenario in both stepping modes and asserts
// the reference contract: identical decision sequences (times, thread
// counts, oracle labels), identical termination status, and ExecTime /
// WorkDone / observed rates within 1e-9.
func requireEquivalent(t *testing.T, name string, s Scenario) {
	t.Helper()
	s.Stepping = SteppingFixed
	ref, err := Run(s)
	if err != nil {
		t.Fatalf("%s: fixed run: %v", name, err)
	}
	s.Stepping = SteppingEvent
	ev, err := Run(s)
	if err != nil {
		t.Fatalf("%s: event run: %v", name, err)
	}

	if !relClose(ref.Duration, ev.Duration) {
		t.Errorf("%s: duration fixed=%.12g event=%.12g", name, ref.Duration, ev.Duration)
	}
	if ref.TargetIndex != ev.TargetIndex || len(ref.Programs) != len(ev.Programs) {
		t.Fatalf("%s: result shape differs", name)
	}
	for i := range ref.Programs {
		rp, ep := &ref.Programs[i], &ev.Programs[i]
		if rp.Finished != ep.Finished {
			t.Errorf("%s[%s]: finished fixed=%v event=%v", name, rp.Name, rp.Finished, ep.Finished)
		}
		if !relClose(rp.ExecTime, ep.ExecTime) {
			t.Errorf("%s[%s]: exec time fixed=%.12g event=%.12g", name, rp.Name, rp.ExecTime, ep.ExecTime)
		}
		if !relClose(rp.WorkDone, ep.WorkDone) {
			t.Errorf("%s[%s]: work fixed=%.12g event=%.12g", name, rp.Name, rp.WorkDone, ep.WorkDone)
		}
		if rp.DecisionCount != ep.DecisionCount {
			t.Errorf("%s[%s]: decisions fixed=%d event=%d", name, rp.Name, rp.DecisionCount, ep.DecisionCount)
		}
		for _, bin := range rp.ThreadHist.Bins() {
			if rp.ThreadHist.Count(bin) != ep.ThreadHist.Count(bin) {
				t.Errorf("%s[%s]: thread hist bin %d fixed=%d event=%d",
					name, rp.Name, bin, rp.ThreadHist.Count(bin), ep.ThreadHist.Count(bin))
			}
		}
		if ep.ThreadHist.Total() != rp.ThreadHist.Total() {
			t.Errorf("%s[%s]: thread hist totals differ", name, rp.Name)
		}
		if len(rp.Samples) != len(ep.Samples) {
			t.Errorf("%s[%s]: sample count fixed=%d event=%d", name, rp.Name, len(rp.Samples), len(ep.Samples))
			continue
		}
		for j := range rp.Samples {
			rs, es := &rp.Samples[j], &ep.Samples[j]
			if rs.Time != es.Time {
				t.Errorf("%s[%s] sample %d: time fixed=%.12g event=%.12g", name, rp.Name, j, rs.Time, es.Time)
			}
			if rs.Threads != es.Threads {
				t.Errorf("%s[%s] sample %d: threads fixed=%d event=%d", name, rp.Name, j, rs.Threads, es.Threads)
			}
			if rs.OracleN != es.OracleN {
				t.Errorf("%s[%s] sample %d: oracle fixed=%d event=%d", name, rp.Name, j, rs.OracleN, es.OracleN)
			}
			if rs.Region != es.Region || rs.Available != es.Available {
				t.Errorf("%s[%s] sample %d: region/avail differ", name, rp.Name, j)
			}
			if !rateClose(rs.Rate, es.Rate) {
				t.Errorf("%s[%s] sample %d: rate fixed=%.12g event=%.12g", name, rp.Name, j, rs.Rate, es.Rate)
			}
			if !relClose(rs.BestRate, es.BestRate) {
				t.Errorf("%s[%s] sample %d: best rate fixed=%.12g event=%.12g", name, rp.Name, j, rs.BestRate, es.BestRate)
			}
		}
	}
}

func mustProgram(t *testing.T, name string) *workload.Program {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func churnHardware(t *testing.T, seed uint64, cores int, freq trace.Frequency, duration float64) *trace.HardwareTrace {
	t.Helper()
	hw, err := trace.GenerateHardware(trace.NewRNG(seed), cores, freq, duration)
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

// stormHardware is a hotplug storm with breakpoints deliberately off the
// step grid and several events landing inside a single dt, the worst case
// for the precomputed availability schedule.
func stormHardware(t *testing.T) *trace.HardwareTrace {
	t.Helper()
	events := []trace.HardwareEvent{{Time: 0, Processors: 32}}
	procs := []int{8, 24, 4, 32, 16, 6, 28, 12}
	tt := 0.37
	for i := 0; i < 40; i++ {
		events = append(events, trace.HardwareEvent{Time: tt, Processors: procs[i%len(procs)]})
		tt += 0.07 + 0.19*float64(i%5)
	}
	hw, err := trace.NewHardwareTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

// TestSteppingEquivalence is the differential harness: the event-horizon
// engine must reproduce the fixed-dt reference across the scenario corpus —
// dynamic hardware, workload churn with staggered arrivals, hotplug storms,
// restart-style mid-run joins, measurement noise, oracle recording, and
// non-default grids.
func TestSteppingEquivalence(t *testing.T) {
	eval := Eval32()

	dynamic := eval
	dynamic.Hardware = churnHardware(t, 11, eval.Cores, trace.LowFrequency, 500)
	requireEquivalent(t, "dynamic", Scenario{
		Machine: dynamic,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "lu"), Policy: FixedThreads(16), Target: true},
			{Program: mustProgram(t, "mg"), Policy: FixedThreads(8), Loop: true},
			{Program: mustProgram(t, "cg"), Policy: OraclePolicy{}, Loop: true},
		},
		MaxTime:       400,
		RecordSamples: true,
		RecordOracle:  true,
	})

	churn := eval
	churn.Hardware = churnHardware(t, 23, eval.Cores, trace.HighFrequency, 300)
	requireEquivalent(t, "churn-arrivals", Scenario{
		Machine: churn,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "art"), Policy: FixedThreads(12), Target: true, StartDelay: 7.3},
			{Program: mustProgram(t, "equake"), Policy: FixedThreads(20), Loop: true},
			{Program: mustProgram(t, "mg"), Policy: FixedThreads(6), Loop: true, StartDelay: 33.21},
			{Program: mustProgram(t, "swim"), Policy: OraclePolicy{}, Loop: true, StartDelay: 101.7},
		},
		MaxTime:       300,
		RecordSamples: true,
		RateNoise:     0.05,
		Seed:          99,
	})

	chaos := eval
	chaos.Hardware = stormHardware(t)
	requireEquivalent(t, "hotplug-storm", Scenario{
		Machine: chaos,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "cg"), Policy: FixedThreads(24), Target: true},
			{Program: mustProgram(t, "lu"), Policy: FixedThreads(10), Loop: true},
		},
		MaxTime:       120,
		RecordSamples: true,
		RecordOracle:  true,
		RateNoise:     0.1,
		Seed:          7,
	})

	restart := eval
	restart.Hardware = churnHardware(t, 5, eval.Cores, trace.LowFrequency, 200)
	requireEquivalent(t, "restart-join", Scenario{
		Machine: restart,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "swim"), Policy: FixedThreads(28), Target: true, StartDelay: 50.05},
			{Program: mustProgram(t, "art"), Policy: FixedThreads(4), Loop: true},
		},
		MaxTime:       200,
		RecordSamples: true,
	})

	solo := eval
	requireEquivalent(t, "solo-static", Scenario{
		Machine: solo,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "lu"), Policy: FixedThreads(32), Target: true},
		},
		MaxTime:       500,
		RecordSamples: true,
	})

	grid := Train12()
	grid.Hardware = churnHardware(t, 41, grid.Cores, trace.HighFrequency, 150)
	requireEquivalent(t, "custom-grid", Scenario{
		Machine: grid,
		Programs: []ProgramSpec{
			{Program: mustProgram(t, "mg"), Policy: FixedThreads(9), Target: true},
			{Program: mustProgram(t, "cg"), Policy: FixedThreads(5), Loop: true},
		},
		MaxTime:         150,
		DT:              0.05,
		ControlInterval: 0.3,
		RecordSamples:   true,
		RecordOracle:    true,
	})
}

// TestHWScheduleMatchesAvailableAt pins the precomputed availability
// schedule to MachineConfig.availableAt bit for bit: at every step of the
// grid both must report the same processor count, including storm traces
// with off-grid breakpoints and several events per step.
func TestHWScheduleMatchesAvailableAt(t *testing.T) {
	traces := []*trace.HardwareTrace{
		nil,
		trace.StaticHardware(32),
		stormHardware(t),
		churnHardware(t, 3, 32, trace.LowFrequency, 300),
		churnHardware(t, 17, 32, trace.HighFrequency, 300),
	}
	for ti, hw := range traces {
		for _, dt := range []float64{DefaultDT, 0.05, 0.13} {
			cfg := Eval32()
			cfg.Hardware = hw
			e, err := newEngine(Scenario{
				Machine:  cfg,
				Programs: []ProgramSpec{{Program: mustProgram(t, "lu"), Policy: FixedThreads(4)}},
				MaxTime:  300,
				DT:       dt,
			})
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step <= e.steps; step++ {
				want := e.cfg.availableAt(float64(step) * dt)
				got := e.availAt(step)
				if got != want {
					t.Fatalf("trace %d dt=%g step %d: schedule says %d, availableAt says %d", ti, dt, step, got, want)
				}
			}
			_ = ti
		}
	}
}

// FuzzSteppingEquivalence feeds randomized scenarios through both stepping
// modes and requires the differential contract to hold.
func FuzzSteppingEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), false, false)
	f.Add(uint64(42), uint8(3), uint8(1), true, true)
	f.Add(uint64(77), uint8(1), uint8(2), true, false)
	f.Fuzz(func(t *testing.T, seed uint64, nProg, freq uint8, noise, oracle bool) {
		rng := trace.NewRNG(seed<<1 | 1)
		names := workload.Names()
		n := 1 + int(nProg%4)
		cfg := Eval32()
		switch freq % 3 {
		case 0:
			cfg.Hardware = nil
		case 1:
			hw, err := trace.GenerateHardware(rng, cfg.Cores, trace.LowFrequency, 120)
			if err != nil {
				t.Skip()
			}
			cfg.Hardware = hw
		case 2:
			hw, err := trace.GenerateHardware(rng, cfg.Cores, trace.HighFrequency, 120)
			if err != nil {
				t.Skip()
			}
			cfg.Hardware = hw
		}
		s := Scenario{
			Machine:       cfg,
			MaxTime:       40 + 40*rng.Float64(),
			RecordSamples: true,
			RecordOracle:  oracle,
			Seed:          seed + 1,
		}
		if noise {
			s.RateNoise = 0.02 + 0.1*rng.Float64()
		}
		for i := 0; i < n; i++ {
			p, err := workload.ByName(names[rng.Intn(len(names))])
			if err != nil {
				t.Fatal(err)
			}
			spec := ProgramSpec{Program: p, Loop: i > 0}
			if i == 0 {
				spec.Target = true
			} else {
				spec.StartDelay = 20 * rng.Float64()
			}
			if rng.Float64() < 0.25 {
				spec.Policy = OraclePolicy{}
			} else {
				spec.Policy = FixedThreads(1 + rng.Intn(cfg.Cores))
			}
			s.Programs = append(s.Programs, spec)
		}
		requireEquivalent(t, "fuzz", s)
	})
}
