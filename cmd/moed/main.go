// Command moed is the multi-tenant decision daemon: many independent
// tenant runtimes behind one HTTP/NDJSON decision API, wrapped in the
// robustness envelope of internal/serve — admission control, per-request
// deadlines, per-tenant circuit breakers, a wedge watchdog, and SIGTERM
// graceful drain (stop admitting, flush in-flight, checkpoint every
// tenant, exit 0 within the drain window).
//
//	moed -listen :7077 -checkpoint-dir /var/lib/moed
//
// Endpoints: POST /v1/decide (JSON, or NDJSON stream with Content-Type
// application/x-ndjson), POST /v1/stream (upgrade to the binary wire
// protocol; also served raw on -stream-addr), GET /v1/tenants,
// /healthz, /metrics, /metrics.json, /debug/pprof. See DESIGN.md
// §13 and §16.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"moe/internal/serve"
)

func main() {
	var (
		listen          = flag.String("listen", ":7077", "address to serve on")
		streamAddr      = flag.String("stream-addr", "", "TCP address for the raw wire streaming transport (empty = HTTP-only; POST /v1/stream upgrades either way)")
		groupCommit     = flag.Duration("group-commit-window", 0, "with -checkpoint-sync, share journal fsyncs across batches inside this window (0 = fsync per batch; try 1ms)")
		checkpointDir   = flag.String("checkpoint-dir", "", "root directory for per-tenant checkpoint lineages (empty = ephemeral tenants)")
		checkpointEvery = flag.Int("checkpoint-every", serve.DefCheckpointEvery, "snapshot cadence in decisions per tenant")
		checkpointSync  = flag.Bool("checkpoint-sync", false, "fsync every journal append (safer, slower)")
		maxThreads      = flag.Int("max-threads", serve.DefMaxThreads, "machine thread cap for tenant runtimes")
		maxTenants      = flag.Int("max-tenants", serve.DefMaxTenants, "tenant registry bound")
		maxInflight     = flag.Int("max-inflight", serve.DefMaxInflight, "concurrent decision request bound (excess sheds 503)")
		rate            = flag.Float64("rate", 0, "admission token-bucket rate in requests/sec (0 = unlimited; excess sheds 429)")
		burst           = flag.Int("burst", 0, "token-bucket depth (0 derives from -rate)")
		deadlineMs      = flag.Int("deadline-ms", int(serve.DefDefaultDeadline/time.Millisecond), "default per-request deadline when X-Deadline-Ms is absent")
		maxBatch        = flag.Int("max-batch", serve.DefMaxBatch, "observations per request body bound")
		wedgeTimeout    = flag.Duration("wedge-timeout", serve.DefWedgeTimeout, "in-flight decision budget before the watchdog recycles the tenant")
		drainWindow     = flag.Duration("drain-window", serve.DefDrainWindow, "SIGTERM graceful-drain bound")
		faultInjection  = flag.Bool("fault-injection", false, "wrap chaos-panic-*/chaos-stall-* tenants with injected faults (testing only)")
		quiet           = flag.Bool("quiet", false, "suppress operational log lines")
		replicateTo     = flag.String("replicate-to", "", "base URL of a hot standby; every committed checkpoint artifact is shipped there before the client ack")
		standby         = flag.Bool("standby", false, "run as a hot standby: apply shipped artifacts, refuse decisions until promoted via POST /v1/promote")
		replicaTerm     = flag.Uint64("replica-term", 0, "fencing term this primary ships at (a restarted primary of a promoted pair must pass the new term)")
		dedupWindow     = flag.Int("dedup-window", serve.DefDedupWindow, "per-tenant idempotency window: identified requests (X-Request-Id) remembered for exactly-once acks")
		promote         = flag.String("promote", "", "client mode: POST /v1/promote to this base URL, print the report, and exit")
	)
	flag.Parse()

	if *promote != "" {
		os.Exit(promoteStandby(*promote))
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := serve.Config{
		MaxThreads:        *maxThreads,
		CheckpointRoot:    *checkpointDir,
		CheckpointEvery:   *checkpointEvery,
		CheckpointSync:    *checkpointSync,
		GroupCommitWindow: *groupCommit,
		MaxTenants:        *maxTenants,
		MaxInflight:       *maxInflight,
		Rate:              *rate,
		Burst:             *burst,
		DefaultDeadline:   time.Duration(*deadlineMs) * time.Millisecond,
		MaxBatch:          *maxBatch,
		WedgeTimeout:      *wedgeTimeout,
		DrainWindow:       *drainWindow,
		ReplicateTo:       *replicateTo,
		ReplicaTerm:       *replicaTerm,
		Standby:           *standby,
		DedupWindow:       *dedupWindow,
		Logf:              logf,
	}
	if *faultInjection {
		cfg.PolicyBuild = serve.FaultInjectionBuild(serve.DefaultPolicyBuild)
		logf("moed: fault injection armed for %s-*/%s-* tenants", serve.ChaosPanicPrefix, serve.ChaosStallPrefix)
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	drained := make(chan int, 1)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		logf("moed: %s: draining (window %s)", sig, *drainWindow)
		rep, err := srv.Drain(*drainWindow)
		code := 0
		switch {
		case err != nil:
			logf("moed: drain: %v", err)
			code = 1
		case !rep.Clean():
			logf("moed: drain incomplete: timed_out=%v errors=%v", rep.TimedOut, rep.Errors)
			code = 1
		default:
			logf("moed: drain clean in %s: %d checkpointed, %d ephemeral, %d journal-only, %d wedged",
				rep.Elapsed.Round(time.Millisecond), rep.Checkpointed, rep.Ephemeral,
				len(rep.JournalOnly), len(rep.Wedged))
		}
		httpSrv.Close() // in-flight already flushed by Drain
		drained <- code
	}()

	if *streamAddr != "" {
		ln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		logf("moed: wire streaming on %s", *streamAddr)
		go func() {
			if err := srv.ServeStream(ln); err != nil {
				logf("moed: stream listener: %v", err)
			}
		}()
	}

	role := "solo"
	switch {
	case *standby:
		role = "standby (decisions refused until promoted)"
	case *replicateTo != "":
		role = fmt.Sprintf("primary replicating to %s", *replicateTo)
	}
	logf("moed: serving on %s (checkpoint-dir=%q, role: %s)", *listen, *checkpointDir, role)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(<-drained)
}

// promoteStandby is the -promote client mode: it asks the standby at base to
// take over serving and prints the promotion report (term, per-tenant
// recovered decision counts) as JSON on stdout.
func promoteStandby(base string) int {
	resp, err := http.Post(base+"/v1/promote", "application/json", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moed: promote: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	var rep serve.PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "moed: promote: decoding response (status %d): %v\n", resp.StatusCode, err)
		return 1
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "moed: promote: status %d\n", resp.StatusCode)
		return 1
	}
	return 0
}
