// Package atomicio provides crash-safe file replacement: write to a
// temporary file in the target directory, fsync it, rename it over the
// destination, and fsync the directory. A reader therefore observes either
// the complete old contents or the complete new contents, never a torn
// mixture — the property every durable artifact in this repository (trained
// expert sets, runtime checkpoints) is written under.
//
// The package sits below both internal/expert and internal/checkpoint in
// the import graph so either can use it without a cycle.
package atomicio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Stage names one step of the atomic-replace protocol, in execution order.
// The crash-injection harness aborts the writer at each stage in turn and
// asserts that recovery still finds an intact file.
type Stage string

// The protocol stages, in order.
const (
	StageCreate   Stage = "create"    // temp file created, nothing written
	StageWrite    Stage = "write"     // payload written, not yet synced
	StageSyncFile Stage = "sync-file" // temp file fsynced
	StageClose    Stage = "close"     // temp file closed
	StageRename   Stage = "rename"    // temp renamed over destination
	StageSyncDir  Stage = "sync-dir"  // directory entry durably recorded
)

// Stages lists every fault point in protocol order, for harnesses that
// iterate over them.
func Stages() []Stage {
	return []Stage{StageCreate, StageWrite, StageSyncFile, StageClose, StageRename, StageSyncDir}
}

// FaultFn simulates a crash: it is consulted after each completed stage,
// and a non-nil error aborts the protocol right there, leaving whatever the
// stage left on disk (a partially materialized temp file, an unrenamed
// temp, an unsynced directory). Production writes pass nil.
type FaultFn func(stage Stage) error

// TempSuffix marks in-flight temp files; recovery scans must ignore any
// file carrying it.
const TempSuffix = ".tmp"

// WriteFile atomically replaces path with data. On return without error the
// new contents are durable; on error the previous contents (or absence) of
// path are untouched, though an orphaned temp file may remain.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileHooked(path, data, perm, nil)
}

// WriteFileHooked is WriteFile with a crash-injection hook; see FaultFn.
func WriteFileHooked(path string, data []byte, perm os.FileMode, fault FaultFn) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*"+TempSuffix)
	if err != nil {
		return fmt.Errorf("atomicio: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any early exit (real error or injected crash) leaves the temp file in
	// place exactly as a crash would; callers and recovery ignore *.tmp.
	fail := func(stage Stage) error {
		if fault == nil {
			return nil
		}
		return fault(stage)
	}
	if err := fail(StageCreate); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: writing %s: %w", tmpName, err)
	}
	if err := fail(StageWrite); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: syncing %s: %w", tmpName, err)
	}
	if err := fail(StageSyncFile); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: chmod %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", tmpName, err)
	}
	if err := fail(StageClose); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: renaming %s over %s: %w", tmpName, path, err)
	}
	if err := fail(StageRename); err != nil {
		return err
	}
	if err := SyncDir(dir); err != nil {
		return err
	}
	return fail(StageSyncDir)
}

// SyncDir fsyncs a directory so previously renamed entries are durable.
// Platforms and filesystems whose directory handles reject fsync — EACCES,
// EINVAL, ENOTSUP/EOPNOTSUPP depending on the OS — are tolerated: the
// rename itself is still atomic there, durability of the entry is simply
// not guaranteed by this call.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !syncUnsupported(err) {
		return fmt.Errorf("atomicio: syncing dir %s: %w", dir, err)
	}
	return nil
}

// syncUnsupported reports whether an fsync error means the platform or
// filesystem does not support syncing this handle, rather than a real
// durability failure.
func syncUnsupported(err error) bool {
	return os.IsPermission(err) ||
		errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP)
}

// RemoveTemps deletes orphaned temp files (crash leftovers) in dir. Missing
// directories are not an error.
func RemoveTemps(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if IsTemp(e.Name()) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// IsTemp reports whether a file name is an in-flight temp artifact.
func IsTemp(name string) bool {
	return len(name) >= len(TempSuffix) && name[len(name)-len(TempSuffix):] == TempSuffix
}
