package core

// The healthy-regime fast path: a precompiled decision path for batch
// serving (see Runtime.DecideBatch) that skips the rungs of the degradation
// ladder which provably cannot fire.
//
// The design splits a decision into a pure plan and a replayed commit:
//
//   - FastPlan proves, against a snapshot of the mixture's standing state
//     and WITHOUT mutating anything, that the full Decide would take its
//     unconditional happy path on this observation: no sanitizer repair, no
//     suspect verdict (churn or consensus), no non-finite prediction, no
//     health transition, hence no reroute and no OS-default fallback. The
//     gating evaluations it computes are memoized in a per-mixture scratch.
//   - FastCommit then performs exactly the mutations Decide would, in the
//     same order and with the same arithmetic, reusing the memoized
//     evaluations and preallocated buffers, so the committed decision is
//     byte-identical to Decide's and the steady-state path allocates
//     nothing.
//
// Because the plan is pure, a failed plan (regime demotion) leaves no trace:
// the observation reaches the full Decide ladder completely untouched, which
// is the safety argument — the fast path can only serve decisions on which
// every skipped rung was proven cold. The differential harness in
// runtime_batch_test.go pins the equivalence over the golden scenarios, the
// chaos fault suite, and a fuzzer.

import (
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
)

// Regime classifies the mixture's standing state for the batch dispatcher.
// Only RegimeHealthy is eligible for the fast path; every other regime
// routes through the full Decide ladder.
type Regime int

const (
	// RegimeHealthy: every expert in good standing, pending predictions
	// live, detail capture off — the steady state the fast path compiles
	// for.
	RegimeHealthy Regime = iota
	// RegimeCold: no pending predictions to score yet (nothing has been
	// decided since construction or restore), so the scoring arm's shape
	// differs. A suspect observation does NOT return the mixture to cold:
	// the pre-suspect predictions stay pending for the next trustworthy
	// observation to score.
	RegimeCold
	// RegimeLoneExpert: fewer than two experts — sensor trust never
	// engages, a different ladder shape the fast path does not compile.
	RegimeLoneExpert
	// RegimeDegraded: at least one expert quarantined or on probation; the
	// reroute/fallback rungs and the probation state machine may fire.
	RegimeDegraded
	// RegimeObserved: decision-detail capture is enabled; every decision
	// must walk the full path so telemetry sees its internals.
	RegimeObserved
	// RegimeEvolving: the online expert lifecycle is enabled, so pool
	// membership — the deepest standing assumption the fast path compiles
	// against — can change on any decision. Evolving mixtures always walk
	// the full path.
	RegimeEvolving
)

// String names the regime for logs and test failures.
func (r Regime) String() string {
	switch r {
	case RegimeHealthy:
		return "healthy"
	case RegimeCold:
		return "cold"
	case RegimeLoneExpert:
		return "lone-expert"
	case RegimeDegraded:
		return "degraded"
	case RegimeObserved:
		return "observed"
	case RegimeEvolving:
		return "evolving"
	default:
		return "invalid"
	}
}

// Regime reports the mixture's standing regime — the per-batch half of the
// dispatcher. Per-observation conditions (dirty features, availability
// churn, consensus suspicion, an imminent health transition) are checked by
// FastPlan on top of this.
func (m *Mixture) Regime() Regime {
	switch {
	case m.detail != nil:
		return RegimeObserved
	case m.evo != nil:
		return RegimeEvolving
	case len(m.experts) < 2:
		return RegimeLoneExpert
	case !m.health.allOK():
		return RegimeDegraded
	case !m.pendingValid:
		return RegimeCold
	default:
		return RegimeHealthy
	}
}

// fastScratch holds the fast path's preallocated buffers and memoized
// gating evaluations. Positional invalidation is structural: the scratch's
// evaluations are only ever consumed by the FastCommit immediately
// following the FastPlan that wrote them, and any expert/health/trust state
// change in between can only come from the full Decide path — which is only
// reachable after the plan already failed.
type fastScratch struct {
	errors     []float64                   // memoized gating errors (likelihood-scaled)
	raw        []float64                   // memoized raw errors (accuracy statistics)
	healthEMA  []float64                   // memoized post-observation health error EMAs
	finiteTrue []bool                      // all-true: the plan proved every prediction finite
	selX       []float64                   // selector standardization scratch (Dim+1)
	selScores  []float64                   // selector score scratch (k)
	selSD      []float64                   // per-decision selector deviation cache (Dim)
	predBuf    []float64                   // expert regression-input scratch
	sigma      []*[features.EnvDim]float64 // per-expert cached residual scales

	plannedNorm  float64 // observed environment norm from the last plan
	plannedChurn float64 // availability-churn EMA from the last plan

	// Deferred histogram increments: map inserts allocate, so fast commits
	// count into flat arrays and FlushFast folds them into the canonical
	// histograms before the decision lock is released. Increments commute
	// with the direct Add calls of interleaved full-ladder decisions.
	selAdds    []int
	threadAdds []int
	dirty      bool
}

// fastScratchInit lazily builds the scratch (one allocation ever, on the
// first planned decision).
func (m *Mixture) fastScratchInit() *fastScratch {
	if m.fast != nil {
		return m.fast
	}
	k := len(m.experts)
	fs := &fastScratch{
		errors:     make([]float64, k),
		raw:        make([]float64, k),
		healthEMA:  make([]float64, k),
		finiteTrue: make([]bool, k),
		selX:       make([]float64, features.Dim+1),
		selScores:  make([]float64, k),
		selSD:      make([]float64, features.Dim),
		predBuf:    make([]float64, expert.PredictScratchLen),
		sigma:      make([]*[features.EnvDim]float64, k),
		selAdds:    make([]int, k),
	}
	for i := range fs.finiteTrue {
		fs.finiteTrue[i] = true
	}
	for i, e := range m.experts {
		if vm, ok := e.Env.(expert.VectorEnvModel); ok {
			fs.sigma[i] = vm.ResidualSigma()
		}
	}
	m.fast = fs
	return fs
}

// FastPlan runs the pure healthy-regime precheck for d: it proves that no
// rung of the degradation ladder can fire on this decision and memoizes the
// gating evaluations it computed. It mutates nothing; when it returns false
// the caller must route d through the full Decide, whose behavior on the
// untouched state is exactly as if FastPlan had never run.
func (m *Mixture) FastPlan(d *sim.Decision) bool {
	// A FastCommit with no intervening mutation provably left the regime
	// healthy (see fastPrimed), so mid-stream plans skip the recheck.
	if !m.fastPrimed && m.Regime() != RegimeHealthy {
		return false
	}
	f := &d.Features
	if !features.Clean(f) {
		// Sanitization would repair — and a repaired observation is suspect
		// before any expert votes.
		return false
	}
	churn, storming := m.trust.wouldStorm(f[features.Processors])
	if storming {
		return false
	}
	fs := m.fastScratchInit()
	observedEnv := f.EnvPart()
	observedNorm := observedEnv.Norm()
	for k := range m.experts {
		pred := &m.pendingPred[k]
		if !pred.Finite() {
			return false
		}
		gating, raw := pred.ErrorsWith(&observedEnv, observedNorm)
		fs.errors[k] = gating * applicabilityFactor(m.experts[k], &m.pendingFeat)
		fs.raw[k] = raw
		// The plan's conditions are a pure conjunction, so the per-expert
		// health probe folds into the scoring pass even though Decide orders
		// the consensus check first.
		ema, leaves := m.health.wouldLeaveOK(k, raw, observedNorm)
		if leaves {
			return false
		}
		fs.healthEMA[k] = ema
	}
	if consensusSuspect(fs.raw, fs.finiteTrue, observedNorm) {
		return false
	}
	fs.plannedNorm = observedNorm
	fs.plannedChurn = churn
	return true
}

// FastCommit applies the decision planned by the immediately preceding
// successful FastPlan(d) and returns the thread count. It performs exactly
// the mutations Decide would — trust churn, scoring bookkeeping, health
// EMAs, selector update and selection, pending-prediction refresh — in
// Decide's order, reusing the memoized evaluations. Histogram increments
// are deferred; the caller must FlushFast before any reader can observe the
// histograms. Calling FastCommit without a successful plan for the same d
// is a contract violation.
func (m *Mixture) FastCommit(d *sim.Decision) int {
	fs := m.fast
	f := &d.Features
	observedNorm := fs.plannedNorm

	// The storm verdict is known false (the plan proved it); storing the
	// planned EMA advances the churn detector exactly as Decide's
	// procStorming call does.
	m.trust.commitChurn(f[features.Processors], fs.plannedChurn)

	for k := range m.experts {
		m.errSum[k] += fs.raw[k]
		m.observations[k]++
		if withinEnvTolerance(fs.raw[k], observedNorm) {
			m.accurate[k]++
		}
		// The plan proved the observation keeps expert k in good standing;
		// observe reduces to storing the EMA the plan computed.
		m.health.commitHealthyEMA(k, fs.healthEMA[k])
	}
	m.obsNormSum += observedNorm

	// The fused selector step covers Decide's Update(pendingFeat), the
	// scoring Select(pendingFeat) and the decision Select(f); nothing between
	// those calls in Decide touches selector state, so fusing them is safe.
	chosen, k := m.fastSelectorStep(f, fs)
	m.mixObserved++
	if withinEnvTolerance(fs.raw[chosen], observedNorm) {
		m.mixAccurate++
	}

	m.trust.lastFeat, m.trust.haveFeat = *f, true

	// The plan proved every expert stays in good standing through this
	// observation, so the selection is usable and neither the reroute nor
	// the OS-default rung can fire.
	fs.selAdds[k]++
	n := m.experts[k].PredictThreadsBuf(f, d.MaxThreads, fs.predBuf)
	for len(fs.threadAdds) <= n {
		fs.threadAdds = append(fs.threadAdds, 0)
	}
	fs.threadAdds[n]++
	fs.dirty = true

	x := fs.predBuf[:features.Dim]
	copy(x, f[:])
	for i, e := range m.experts {
		e.PredictEnvIntoStaged(&m.pendingPred[i], f, x, fs.sigma[i])
	}
	m.pendingFeat = *f
	m.fastPrimed = true
	return n
}

// DecideFast attempts d on the healthy-regime fast path: (n, true) when the
// plan succeeded and was committed, (0, false) with all state untouched
// otherwise. Callers composing their own batch loop (the Runtime) invoke
// FastPlan and FastCommit separately so they can interleave bookkeeping —
// journaling — between the two.
func (m *Mixture) DecideFast(d sim.Decision) (int, bool) {
	if !m.FastPlan(&d) {
		return 0, false
	}
	return m.FastCommit(&d), true
}

// FlushFast folds the deferred histogram increments from fast commits into
// the canonical histograms. The Runtime calls it before releasing the
// decision lock at the end of every batch (and before any snapshot), so no
// reader can ever observe the deferred state.
func (m *Mixture) FlushFast() {
	fs := m.fast
	if fs == nil || !fs.dirty {
		return
	}
	for k, c := range fs.selAdds {
		if c != 0 {
			m.selections.AddN(k, c)
			fs.selAdds[k] = 0
		}
	}
	for n, c := range fs.threadAdds {
		if c != 0 {
			m.threadHist.AddN(n, c)
			fs.threadAdds[n] = 0
		}
	}
	fs.dirty = false
}

// fastSelectorStep performs Decide's three selector calls — the update on
// the scored state, the scoring selection, and the decision selection — via
// the fused scratch kernel when the selector is the hyperplane scheme sized
// to this pool, and through the public (allocating) interface otherwise:
// mismatched or custom selectors stay byte-identical, just not fused or
// allocation-free.
func (m *Mixture) fastSelectorStep(f *features.Vector, fs *fastScratch) (chosen, sel int) {
	if h, ok := m.selector.(*HyperplaneSelector); ok && h.k == len(m.experts) {
		return h.fastUpdateSelect(&m.pendingFeat, f, fs.errors, fs.selX, fs.selScores, fs.selSD)
	}
	m.selector.Update(m.pendingFeat, fs.errors)
	return m.selector.Select(m.pendingFeat), m.selector.Select(*f)
}
