package expert

import "moe/internal/regress"

// Canonical4 returns the four experts with the regression coefficients
// published in Table 1 of the paper (weights w1..w10 for the thread
// predictor, m1..m10 for the environment predictor, and the regression
// constant β). They let the library run out of the box, exactly as the
// authors shipped their trained models; retraining on the simulator
// (internal/training) produces experts adapted to this substrate instead.
//
// The paper's experts were trained on (Fig 5): E1/E2 on scalable programs,
// E3/E4 on non-scalable programs, each pair on the 12- and 32-core
// platforms.
func Canonical4() Set {
	mk := func(name string, w, m []float64, maxThreads int, trainedOn string) *Expert {
		wm, err := regress.FromCoefficients(w)
		if err != nil {
			panic(err) // static data; length is fixed below
		}
		mm, err := regress.FromCoefficients(m)
		if err != nil {
			panic(err)
		}
		return &Expert{Name: name, Threads: wm, Env: NormEnvModel{Model: mm}, MaxThreads: maxThreads, TrainedOn: trainedOn}
	}
	return Set{
		mk("E1",
			[]float64{1.05, -1.52, 0.87, -0.62, 0.98, 0.003, 0.002, -0.013, -0.07, 0.004, -1.21},
			[]float64{-0.47, 0.35, 1.15, 0.39, 0.46, 0.29, 0.17, 0.64, 0.01, 0.002, 0.25},
			32, "scalable programs"),
		mk("E2",
			[]float64{-0.84, 1.12, 0.84, 0.05, 0.98, 0.02, 0.03, 0.227, 0.002, -0.08, -6.8},
			[]float64{1.02, -0.78, 0.05, 0.44, 0.002, 0.23, 0.09, 0.6, 0.05, -0.04, 0.28},
			32, "scalable programs"),
		mk("E3",
			[]float64{0.14, 0.95, -0.87, -0.48, 0.99, -0.15, 0.473, -1.07, 0.007, 0.01, -3.03},
			[]float64{1.1, 1.10, 0.54, 0.44, 0.142, 0.25, 0.07, 0.15, 0.06, 0.14, 0.33},
			32, "non-scalable programs"),
		mk("E4",
			[]float64{0.05, 0.03, -0.57, 0.004, 0.92, 0.22, 0.01, -0.62, 0.03, -0.14, -2.5},
			[]float64{0.74, 1.03, 1.12, 0.39, 0.74, 0.28, 0.09, 0.59, 0.12, 0.00, -0.0},
			32, "non-scalable programs"),
	}
}
