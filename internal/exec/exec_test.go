package exec

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"moe/internal/features"
	"moe/internal/sim"
)

func TestRunRegionWorkerEquivalence(t *testing.T) {
	// The same kernel must produce identical results regardless of the
	// worker count (partitioning must not change the computation).
	ref := NewBlackScholes(10_000)
	ref.Process(0, 10_000)

	for _, workers := range []int{1, 2, 7, 16} {
		b := NewBlackScholes(10_000)
		RunRegion(b, 10_000, workers)
		for i := range ref.Out {
			if math.Abs(b.Out[i]-ref.Out[i]) > 1e-12 {
				t.Fatalf("workers=%d diverges at %d: %v vs %v", workers, i, b.Out[i], ref.Out[i])
			}
		}
	}
}

func TestRunRegionDegenerateCounts(t *testing.T) {
	b := NewBlackScholes(100)
	RunRegion(b, 100, 0)    // clamps to 1
	RunRegion(b, 100, 1000) // clamps to items
	for _, v := range b.Out {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("invalid option price")
		}
	}
}

func TestBlackScholesPrices(t *testing.T) {
	b := NewBlackScholes(1000)
	b.Process(0, 1000)
	for i, v := range b.Out {
		if v < 0 {
			t.Fatalf("negative call price at %d: %v", i, v)
		}
		if v > b.Spot[i] {
			t.Fatalf("call price %v above spot %v", v, b.Spot[i])
		}
	}
}

func TestCNDProperties(t *testing.T) {
	if math.Abs(cnd(0)-0.5) > 1e-9 {
		t.Errorf("cnd(0) = %v", cnd(0))
	}
	if cnd(6) < 0.999 || cnd(-6) > 0.001 {
		t.Error("cnd tails wrong")
	}
	for x := -3.0; x <= 3; x += 0.25 {
		if s := cnd(x) + cnd(-x); math.Abs(s-1) > 1e-7 {
			t.Errorf("cnd symmetry broken at %v: %v", x, s)
		}
	}
}

func TestSparseMatVec(t *testing.T) {
	m := NewSparseMatVec(1000, 8)
	ref := NewSparseMatVec(1000, 8)
	ref.Process(0, 1000)
	RunRegion(m, 1000, 4)
	for i := range ref.Y {
		if math.Abs(m.Y[i]-ref.Y[i]) > 1e-12 {
			t.Fatalf("spmv diverges at row %d", i)
		}
	}
	nonZero := 0
	for _, v := range m.Y {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < 900 {
		t.Errorf("only %d non-zero outputs", nonZero)
	}
}

func TestStencilSmooths(t *testing.T) {
	s := NewStencil(1000)
	var before float64
	for _, v := range s.A {
		before += v
	}
	RunRegion(s, 1000, 3)
	s.Swap()
	var after float64
	for _, v := range s.A {
		after += v
	}
	// The 3-point kernel conserves mass approximately (boundary effects
	// aside).
	if math.Abs(after-before) > before*0.01 {
		t.Errorf("stencil mass changed: %v -> %v", before, after)
	}
}

func TestKernelsMetadata(t *testing.T) {
	kernels := []Kernel{NewBlackScholes(10), NewSparseMatVec(10, 2), NewStencil(10)}
	for _, k := range kernels {
		if k.Name() == "" {
			t.Error("kernel without name")
		}
		c := k.Code()
		if c.LoadStore <= 0 || c.Instructions <= 0 || c.Branches <= 0 {
			t.Errorf("%s has invalid code features: %+v", k.Name(), c)
		}
	}
	// Relative character: spmv is more memory-heavy than blackscholes.
	if NewSparseMatVec(10, 2).Code().LoadStore <= NewBlackScholes(10).Code().LoadStore {
		t.Error("spmv should look more memory-bound than blackscholes")
	}
}

func TestMetricSampler(t *testing.T) {
	ms := NewMetricSampler()
	env := ms.Sample(0)
	if env.Processors < 1 {
		t.Errorf("processors = %v", env.Processors)
	}
	if env.WorkloadThreads < 0 || env.RunQueue < 0 {
		t.Errorf("negative load metrics: %+v", env)
	}
	// Excluding more own workers than goroutines clamps at zero.
	env = ms.Sample(1 << 20)
	if env.WorkloadThreads != 0 {
		t.Errorf("own-worker exclusion should clamp: %v", env.WorkloadThreads)
	}
	if ms.Elapsed() < 0 {
		t.Error("negative elapsed time")
	}
}

func TestMetricSamplerBaselineExcluded(t *testing.T) {
	// Regression: the sampler used to count the process's resting
	// goroutines — main, the GC workers, the test harness — as external
	// workload (f4), and f6 compared the raw total against the CPU count,
	// so an idle process reported phantom load. The floor is calibrated at
	// construction now; at rest both features must be (near) zero. Slack of
	// 2 tolerates runtime goroutines that appear between calibration and
	// sampling.
	ms := NewMetricSampler()
	env := ms.Sample(0)
	if env.WorkloadThreads > 2 {
		t.Errorf("idle process reports %v external workload threads", env.WorkloadThreads)
	}
	if env.RunQueue > 2 {
		t.Errorf("idle process reports run queue %v", env.RunQueue)
	}

	// Goroutines beyond the calibrated floor do count — both as external
	// workload and, in excess of the CPUs, as run queue.
	const extra = 64
	stop := make(chan struct{})
	var started sync.WaitGroup
	started.Add(extra)
	for i := 0; i < extra; i++ {
		go func() {
			started.Done()
			<-stop
		}()
	}
	started.Wait()
	env = ms.Sample(0)
	if env.WorkloadThreads < extra {
		t.Errorf("external workload %v with %d extra goroutines", env.WorkloadThreads, extra)
	}
	procs := runtime.GOMAXPROCS(0)
	if want := float64(extra - procs); env.RunQueue < want {
		t.Errorf("run queue %v, want at least %v", env.RunQueue, want)
	}

	// The caller's own workers are excluded from f4 on top of the floor.
	env = ms.Sample(extra)
	close(stop)
	if env.WorkloadThreads > 2 {
		t.Errorf("own workers not excluded: %v", env.WorkloadThreads)
	}
}

func TestTuner(t *testing.T) {
	if _, err := NewTuner(nil, 4); err == nil {
		t.Error("nil policy should error")
	}
	tuner, err := NewTuner(sim.FixedThreads(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	k := NewBlackScholes(5000)
	for i := 0; i < 3; i++ {
		res := tuner.ExecuteRegion(k, 5000)
		if res.Workers != 2 {
			t.Errorf("region %d used %d workers, want 2", i, res.Workers)
		}
		if res.Rate <= 0 {
			t.Errorf("region %d rate %v", i, res.Rate)
		}
	}
	if tuner.Regions() != 3 {
		t.Errorf("regions = %d", tuner.Regions())
	}
	hist := tuner.WorkerHistogram()
	if math.Abs(hist[2]-1) > 1e-9 {
		t.Errorf("histogram = %v", hist)
	}
	if tuner.PolicyName() != "fixed" {
		t.Errorf("policy name = %s", tuner.PolicyName())
	}
}

func TestTunerClampsToMaxWorkers(t *testing.T) {
	tuner, err := NewTuner(sim.FixedThreads(64), 4)
	if err != nil {
		t.Fatal(err)
	}
	res := tuner.ExecuteRegion(NewStencil(1000), 1000)
	if res.Workers > 4 {
		t.Errorf("workers = %d exceeds cap", res.Workers)
	}
}

func TestTunerFeedsRateToPolicy(t *testing.T) {
	var seenRates []float64
	p := sim.Func{PolicyName: "probe", DecideFn: func(d sim.Decision) int {
		seenRates = append(seenRates, d.Rate)
		return 1
	}}
	tuner, err := NewTuner(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := NewBlackScholes(2000)
	tuner.ExecuteRegion(k, 2000)
	tuner.ExecuteRegion(k, 2000)
	if len(seenRates) != 2 {
		t.Fatalf("policy consulted %d times", len(seenRates))
	}
	if seenRates[0] != 0 {
		t.Error("first decision should see zero rate")
	}
	if seenRates[1] <= 0 {
		t.Error("second decision should see the previous region's rate")
	}
}

func TestTunerFeaturesCarryKernelCode(t *testing.T) {
	var got features.Vector
	p := sim.Func{PolicyName: "probe", DecideFn: func(d sim.Decision) int {
		got = d.Features
		return 1
	}}
	tuner, _ := NewTuner(p, 2)
	k := NewSparseMatVec(500, 4)
	tuner.ExecuteRegion(k, 500)
	if got[features.LoadStoreCount] != k.Code().LoadStore {
		t.Error("decision features must carry the kernel's code features")
	}
	if got[features.Processors] < 1 {
		t.Error("decision features must carry live processor count")
	}
}
