package sim

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Timestep constants. The engine advances in fixed dt steps; policies are
// consulted every ControlInterval and at region boundaries, matching a
// runtime that re-decides the thread count at every parallel loop.
const (
	DefaultDT              = 0.1 // seconds of virtual time per step
	DefaultControlInterval = 0.5 // seconds between policy consultations
)

// SteppingMode selects how the engine walks the virtual-time grid.
type SteppingMode int

const (
	// SteppingFixed is the reference implementation: every dt step is
	// processed explicitly. Golden traces are pinned against this mode.
	SteppingFixed SteppingMode = iota
	// SteppingEvent is the event-horizon engine: between control points,
	// arrivals, availability-curve breakpoints and phase exhaustions the
	// simulated rates are piecewise-constant, so the engine computes the
	// next event's step index and advances the whole machine to it in one
	// closed-form jump (work advances linearly, the stats.EMA family by
	// its exact constant-input solution). Observables agree with
	// SteppingFixed to floating-point accumulation error (≲1e-9 relative;
	// see TestSteppingEquivalence), at a fraction of the cost.
	SteppingEvent
)

// String implements fmt.Stringer.
func (m SteppingMode) String() string {
	switch m {
	case SteppingFixed:
		return "fixed"
	case SteppingEvent:
		return "event"
	default:
		return fmt.Sprintf("SteppingMode(%d)", int(m))
	}
}

// ParseSteppingMode maps the CLI spelling ("fixed", "event") to a mode.
func ParseSteppingMode(s string) (SteppingMode, error) {
	switch s {
	case "fixed":
		return SteppingFixed, nil
	case "event":
		return SteppingEvent, nil
	default:
		return SteppingFixed, fmt.Errorf("sim: unknown stepping mode %q (want fixed or event)", s)
	}
}

// ProgramSpec binds a program model to the policy that controls it and the
// role it plays in the scenario.
type ProgramSpec struct {
	Program *workload.Program
	Policy  Policy
	// Loop makes the program restart when it completes, modelling
	// external workloads that keep the system busy until the target
	// finishes (§6.1: "continue running till the other finishes").
	Loop bool
	// Target marks the program whose completion ends the scenario.
	Target bool
	// StartDelay postpones the program's arrival.
	StartDelay float64
}

// Sample is one timestep observation of a program, used to build training
// data and the timeline figures (Fig 2).
type Sample struct {
	Time     float64
	Features features.Vector
	EnvNorm  float64 // ‖e‖ of the environment features at this time
	Threads  int     // thread count in force
	Rate     float64 // instantaneous work rate
	BestRate float64 // rate the oracle thread count would achieve
	OracleN  int     // oracle-optimal thread count at this instant
	// RateCurve holds the ground-truth parallel-phase rate for every
	// thread count 1..cores (RecordOracle only); it labels the paper's
	// speedup model x(n, f) (§4.1).
	RateCurve  []float64
	Region     int // flat region-execution index
	Available  int // processors online
	WorkldThr  int // external workload threads
	RegionName string
}

// ProgramResult summarizes one program's run.
type ProgramResult struct {
	Name string
	// Finished reports whether the program ran to completion (targets) —
	// looping workloads never finish.
	Finished bool
	// ExecTime is the completion time for finished programs, else the
	// scenario duration.
	ExecTime float64
	// WorkDone is total work units completed (loops included), the
	// throughput measure used for workload impact (Fig 13a).
	WorkDone float64
	// Samples holds the per-control-interval trace if sampling was
	// enabled.
	Samples []Sample
	// ThreadHist counts control intervals spent at each thread count
	// (Fig 17).
	ThreadHist *stats.Histogram
	// DecisionCount is how many times the policy was consulted.
	DecisionCount int
}

// Result is a completed scenario.
type Result struct {
	Programs []ProgramResult
	// Duration is the virtual time the scenario ran.
	Duration float64
	// TargetIndex is the index of the target program in Programs, or -1.
	TargetIndex int
}

// Target returns the target program's result.
func (r *Result) Target() (*ProgramResult, error) {
	if r.TargetIndex < 0 || r.TargetIndex >= len(r.Programs) {
		return nil, fmt.Errorf("sim: result has no target program")
	}
	return &r.Programs[r.TargetIndex], nil
}

// WorkloadThroughput returns total work per second completed by non-target
// programs, the workload-performance measure of Fig 13a.
func (r *Result) WorkloadThroughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	sum := 0.0
	for i := range r.Programs {
		if i != r.TargetIndex {
			sum += r.Programs[i].WorkDone
		}
	}
	return sum / r.Duration
}

// Scenario is one co-execution experiment.
type Scenario struct {
	Machine  MachineConfig
	Programs []ProgramSpec
	// MaxTime bounds the run; required so broken policies cannot hang.
	MaxTime float64
	// DT and ControlInterval override the defaults when positive.
	DT              float64
	ControlInterval float64
	// Stepping selects the engine: the zero value is the fixed-dt
	// reference implementation, SteppingEvent the event-horizon engine.
	Stepping SteppingMode
	// RecordSamples enables per-interval traces on all programs (memory
	// proportional to duration; off for bulk sweeps).
	RecordSamples bool
	// RecordOracle additionally computes the oracle thread count at each
	// control point (used for training-data generation; costs one rate
	// evaluation per candidate thread count).
	RecordOracle bool
	// RateNoise is the relative standard deviation of multiplicative
	// measurement noise applied to the Rate reported to policies (real
	// runtimes time intervals against a noisy clock on a noisy machine).
	// Actual simulated progress is unaffected. Zero disables noise.
	RateNoise float64
	// Seed drives the measurement-noise stream; the default (0) derives
	// a fixed seed so runs stay reproducible.
	Seed uint64
}

// instance is the runtime state of one program. Each region executes in
// two phases: the serial prologue (one runnable thread) followed by the
// parallel phase (the policy-chosen thread count).
type instance struct {
	spec         ProgramSpec
	idx          int // position in the scenario's program list
	threads      int
	region       *workload.Region // current region (tracks regionIdx)
	regionIdx    int              // flat region-execution index
	serialLeft   float64          // serial work left in the current region
	parallelLeft float64          // parallel work left in the current region
	arrived      bool
	finished     bool
	finishTime   float64
	workDone     float64
	// control-interval accounting
	intervalWork  float64
	lastRate      float64
	nextControl   float64
	regionPending bool // region boundary reached; consult policy
	// extWL smooths the instance's view of external workload threads
	// (total runnable minus own demand) so the program's own
	// serial/parallel transitions do not masquerade as workload churn.
	extWL  *stats.EMA
	result ProgramResult
	// compactIdx is this instance's position in the shared per-step
	// demand vector (valid while engineState.sharesValid holds).
	compactIdx int
	// codeFeats holds the program's static code features per region,
	// precomputed once so control points do not renormalize them.
	codeFeats []features.Code
	// stepRate is the progress rate in force when the last processed step
	// ended. While the machine stays quiet it is exactly the rate of the
	// steps ahead, letting the event engine bound phase exhaustion and
	// leap without re-evaluating the rate model.
	stepRate float64
	// ctrlStep memoizes the step index of nextControl (-1 = recompute);
	// arrivalStep is the fixed step index of StartDelay. Both exist so the
	// event engine's horizon scan does no repeated time→step arithmetic.
	ctrlStep    int
	arrivalStep int
}

// enterRegion loads the region at the instance's current index, carrying
// surplus progress from the previous step into the serial phase first.
func (in *instance) enterRegion(surplus float64) {
	prog := in.spec.Program
	// Cache the region by pointer: the rate model reads several fields per
	// evaluation and the by-value RegionAt copy showed up hot in profiles.
	in.region = &prog.Regions[in.regionIdx%len(prog.Regions)]
	r := in.region
	in.serialLeft = (1 - r.ParallelFrac) * r.Work
	in.parallelLeft = r.ParallelFrac * r.Work
	in.serialLeft -= surplus
	if in.serialLeft < 0 {
		in.parallelLeft += in.serialLeft
		in.serialLeft = 0
	}
	in.regionPending = true
}

// phaseLeft returns the work remaining in the instance's current phase.
func (in *instance) phaseLeft() float64 {
	if in.serialLeft > 0 {
		return in.serialLeft
	}
	return in.parallelLeft
}

// engineState carries the shared per-step machine state.
type engineState struct {
	cfg       MachineConfig
	load1     *stats.EMA
	load5     *stats.EMA
	pageEMA   *stats.EMA
	wlEMA     *stats.EMA // short smoothing of runnable threads (sar-style)
	runqEMA   *stats.EMA // short smoothing of the run queue
	lastHW    int
	hwChange  float64 // time of last hardware change, drives migration churn
	noise     *trace.RNG
	rateNoise float64

	// Reusable scratch so the stepping loop allocates nothing: rate-model
	// evaluations build their demand vectors and water-fill shares here
	// instead of allocating per call (the engine is single-goroutine, so
	// one set of buffers suffices).
	demandsBuf []int
	sharesBuf  []float64
	// sharesValid marks demandsBuf/sharesBuf as holding the shared
	// per-step demand vector and its water-filled shares (every live
	// instance at its actual demand, list order, positions recorded in
	// instance.compactIdx). The vector is identical for every actual-rate
	// evaluation within a step, so it is built once and reused until a
	// demand moves or a hypothetical evaluation clobbers the buffers.
	sharesValid bool
	// curves memoizes per-thread-count rate sweeps across control points.
	curves curveCache
}

// refreshShares rebuilds the shared per-step demand vector and shares for
// the current avail, recording each live instance's position.
func (es *engineState) refreshShares(insts []*instance, avail int) {
	demands := es.demandsBuf[:0]
	for _, o := range insts {
		if !o.arrived || o.finished {
			continue
		}
		o.compactIdx = len(demands)
		demands = append(demands, o.demand())
	}
	es.demandsBuf = demands
	programSharesInto(es.sharesBuf[:len(demands)], demands, avail)
	es.sharesValid = true
}

// hwStep is one availability-curve breakpoint mapped onto the step grid:
// from step onward the machine exposes procs processors. Precomputing the
// breakpoint list once per run replaces the per-step scan over the
// hardware trace's event list and hands the event-horizon engine its
// hotplug boundaries for free.
type hwStep struct {
	step  int
	procs int
}

// engine is one in-flight scenario: the immutable setup plus all mutable
// stepping state. Benchmarks drive it step by step; Run wraps it.
type engine struct {
	s         Scenario
	cfg       MachineConfig
	dt, ctrl  float64
	steps     int
	targetIdx int
	insts     []*instance
	es        *engineState

	hwSched []hwStep
	hwIdx   int
	hwAvail int

	// dirtyFrom marks how far the last processed step invalidated cached
	// stepRate values: instances are advanced in list order, so when the
	// instance at position j ends the step with a different demand than it
	// started (a phase or region boundary), the rates cached for positions
	// < j were computed against the old demand and must be re-derived;
	// positions ≥ j already saw the final state. 0 = nothing stale.
	// processStep consumes it as well: an instance whose cached rate is
	// still valid skips the rate model entirely on its first advance
	// iteration, because re-deriving the rate from unchanged inputs is
	// bitwise identical to reusing it.
	dirtyFrom int
}

// newEngine validates the scenario and builds the initial engine state.
func newEngine(s Scenario) (*engine, error) {
	cfg := s.Machine.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(s.Programs) == 0 {
		return nil, fmt.Errorf("sim: scenario has no programs")
	}
	if s.MaxTime <= 0 {
		return nil, fmt.Errorf("sim: scenario needs positive MaxTime")
	}
	if s.Stepping != SteppingFixed && s.Stepping != SteppingEvent {
		return nil, fmt.Errorf("sim: unknown stepping mode %d", s.Stepping)
	}
	dt := s.DT
	if dt <= 0 {
		dt = DefaultDT
	}
	ctrl := s.ControlInterval
	if ctrl <= 0 {
		ctrl = DefaultControlInterval
	}

	targetIdx := -1
	insts := make([]*instance, len(s.Programs))
	for i, spec := range s.Programs {
		if spec.Program == nil {
			return nil, fmt.Errorf("sim: program %d is nil", i)
		}
		if spec.Policy == nil {
			return nil, fmt.Errorf("sim: program %d (%s) has no policy", i, spec.Program.Name)
		}
		if err := spec.Program.Validate(); err != nil {
			return nil, err
		}
		if spec.Target {
			if targetIdx >= 0 {
				return nil, fmt.Errorf("sim: multiple target programs")
			}
			targetIdx = i
		}
		insts[i] = &instance{
			spec:     spec,
			idx:      i,
			threads:  1,
			ctrlStep: -1,
			extWL:    stats.NewEMA(2),
			result: ProgramResult{
				Name:       spec.Program.Name,
				ThreadHist: stats.NewHistogram(),
			},
		}
		insts[i].arrivalStep = stepAtOrAfter(spec.StartDelay, dt, 0)
		insts[i].codeFeats = make([]features.Code, spec.Program.RegionCount())
		for r := range insts[i].codeFeats {
			insts[i].codeFeats[r] = spec.Program.CodeFeatures(r)
		}
		insts[i].enterRegion(0)
	}

	seed := s.Seed
	if seed == 0 {
		seed = 0x517a7e51 + uint64(len(s.Programs))
	}
	es := &engineState{
		cfg:        cfg,
		load1:      stats.NewEMA(60),
		load5:      stats.NewEMA(300),
		pageEMA:    stats.NewEMA(5),
		wlEMA:      stats.NewEMA(2),
		runqEMA:    stats.NewEMA(2),
		lastHW:     cfg.availableAt(0),
		hwChange:   -1e9,
		noise:      trace.NewRNG(seed),
		rateNoise:  s.RateNoise,
		demandsBuf: make([]int, 0, len(insts)),
		sharesBuf:  make([]float64, len(insts)),
	}

	e := &engine{
		s:         s,
		cfg:       cfg,
		dt:        dt,
		ctrl:      ctrl,
		steps:     int(math.Ceil(s.MaxTime / dt)),
		targetIdx: targetIdx,
		insts:     insts,
		es:        es,
	}
	e.hwSched, e.hwAvail = buildHWSchedule(cfg, dt, e.steps)
	e.dirtyFrom = len(insts) // no cached rates exist yet
	return e, nil
}

// clampProcs mirrors MachineConfig.availableAt's bounds.
func clampProcs(p, cores int) int {
	if p > cores {
		p = cores
	}
	if p < 1 {
		p = 1
	}
	return p
}

// buildHWSchedule maps the hardware trace's availability breakpoints onto
// the step grid: entry {s, p} means the engine first observes p processors
// at step s, and the second return is the count in force at step 0. The
// mapping reproduces availableAt's semantics exactly — an event at time T
// becomes visible at the first step s with s·dt ≥ T, when several events
// land between consecutive steps the latest wins, and events past the last
// step of the run are unobservable and dropped — verified bit-for-bit by
// TestHWScheduleMatchesAvailableAt.
func buildHWSchedule(cfg MachineConfig, dt float64, maxStep int) ([]hwStep, int) {
	if cfg.Hardware == nil {
		return nil, cfg.Cores
	}
	events := cfg.Hardware.Events()
	initial := clampProcs(events[0].Processors, cfg.Cores)
	var sched []hwStep
	for _, ev := range events {
		s := stepAtOrAfter(ev.Time, dt, 0)
		if s > maxStep {
			break // events are time-sorted, so every later one is unobservable too
		}
		p := clampProcs(ev.Processors, cfg.Cores)
		if n := len(sched); n > 0 && sched[n-1].step == s {
			sched[n-1].procs = p
		} else {
			sched = append(sched, hwStep{step: s, procs: p})
		}
	}
	return sched, initial
}

// stepAtOrAfter returns the smallest step index s with s·dt + eps ≥ x.
// The ceil gives the candidate; the two guard loops walk it onto the exact
// boundary so floating-point rounding in the division can neither skip a
// step that satisfies the comparison nor claim one that does not.
func stepAtOrAfter(x, dt, eps float64) int {
	if x <= eps {
		return 0
	}
	s := int(math.Ceil((x - eps) / dt))
	if s < 0 {
		s = 0
	}
	for s > 0 && float64(s-1)*dt+eps >= x {
		s--
	}
	for float64(s)*dt+eps < x {
		s++
	}
	return s
}

// availAt returns the processors online at the given step, advancing the
// precomputed breakpoint cursor. Steps must be queried in nondecreasing
// order, which both stepping modes guarantee.
func (e *engine) availAt(step int) int {
	for e.hwIdx < len(e.hwSched) && e.hwSched[e.hwIdx].step <= step {
		e.hwAvail = e.hwSched[e.hwIdx].procs
		e.hwIdx++
	}
	return e.hwAvail
}

// Run executes the scenario to completion of the target (or MaxTime) and
// returns per-program results.
func Run(s Scenario) (*Result, error) {
	e, err := newEngine(s)
	if err != nil {
		return nil, err
	}
	e.run()
	return e.finish(), nil
}

// run drives the stepping loop in the scenario's mode.
func (e *engine) run() {
	if e.s.Stepping == SteppingEvent {
		for step := 0; step <= e.steps; {
			if e.processStep(step) {
				return
			}
			next := e.nextEventStep(step)
			if next > step+1 {
				e.leap(step, next)
			}
			step = next
		}
		return
	}
	for step := 0; step <= e.steps; step++ {
		if e.processStep(step) {
			return
		}
	}
}

// processStep executes one fixed-dt step: arrivals, environment sampling,
// policy control points, and progress. It returns true when the scenario
// is over (target finished, or every program finished). Both stepping
// modes share this body — the event engine differs only in which steps it
// processes explicitly — so reference semantics are defined in one place.
func (e *engine) processStep(step int) bool {
	t := float64(step) * e.dt
	dt := e.dt
	insts := e.insts
	es := e.es

	// invalidate forces every rate to be re-derived this step. Cached
	// rates survive only a perfectly quiet step boundary: an availability
	// change, an arrival, or a consult that moved a thread count all
	// change the rate model's inputs for everyone.
	invalidate := false

	avail := e.availAt(step)
	if avail != es.lastHW {
		es.lastHW = avail
		es.hwChange = t
		invalidate = true
		es.sharesValid = false // shares are water-filled against avail
	}

	// Arrival and completion bookkeeping.
	for _, in := range insts {
		if !in.arrived && t >= in.spec.StartDelay {
			in.arrived = true
			in.nextControl = t
			in.ctrlStep = -1
			invalidate = true
			es.sharesValid = false // the demand vector gains an entry
		}
	}

	// Shared machine state for this step.
	env, rawRunnable := sampleEnv(insts, es, t, avail, dt)
	for _, in := range insts {
		if in.arrived && !in.finished {
			ext := float64(rawRunnable - in.demand())
			if ext < 0 {
				ext = 0
			}
			in.extWL.Update(ext, dt)
		}
	}

	// Policy control points.
	for _, in := range insts {
		if !in.arrived || in.finished {
			continue
		}
		if t+1e-9 >= in.nextControl || in.regionPending {
			threadsBefore := in.threads
			consult(in, insts, es, env, t, avail, e.ctrl, &e.s)
			in.ctrlStep = -1
			if in.threads != threadsBefore {
				invalidate = true
				es.sharesValid = false // parallel-phase demand moved
			}
		}
	}

	// Advance every live program by dt.
	staleFrom := e.dirtyFrom
	if invalidate {
		staleFrom = len(insts)
	}
	e.dirtyFrom = 0
	for pos, in := range insts {
		if !in.arrived || in.finished {
			continue
		}
		demandBefore := in.demand()
		regionBefore := in.regionIdx
		// An instance may reuse last step's rate when nothing it depends
		// on moved across the boundary: no global invalidation, no
		// earlier-listed instance changed demand last step (staleFrom) or
		// during this one (e.dirtyFrom), and only on the first advance
		// iteration — a phase transition inside the step changes the rate.
		reuse := pos >= staleFrom && e.dirtyFrom == 0
		// Consume the step's time across phase and region
		// boundaries, re-evaluating the rate whenever the phase
		// changes: serial work progresses at the serial rate,
		// parallel work at the parallel rate, never mixed. Other
		// programs' demands are held constant within the step.
		remaining := dt
		for iter := 0; remaining > 1e-12 && !in.finished && iter < 64; iter++ {
			var rate float64
			if reuse && iter == 0 {
				rate = in.stepRate
			} else {
				rate = progressRate(in, insts, es, avail, in.threads)
			}
			in.stepRate = rate
			if rate <= 0 {
				break
			}
			phaseLeft := &in.parallelLeft
			if in.serialLeft > 0 {
				phaseLeft = &in.serialLeft
			}
			done := rate * remaining
			if done < *phaseLeft {
				*phaseLeft -= done
				in.workDone += done
				in.intervalWork += done
				remaining = 0
				break
			}
			// Phase exhausted: charge only the time it needed; the
			// demand vector is about to move.
			es.sharesValid = false
			in.workDone += *phaseLeft
			in.intervalWork += *phaseLeft
			remaining -= *phaseLeft / rate
			*phaseLeft = 0
			if in.serialLeft <= 0 && in.parallelLeft <= 0 {
				// Region complete; move to the next.
				in.regionIdx++
				if in.regionIdx >= in.spec.Program.RegionCount() {
					if in.spec.Loop {
						in.regionIdx = 0
						in.enterRegion(0)
					} else {
						in.finished = true
						in.finishTime = t + dt - remaining
					}
				} else {
					in.enterRegion(0)
				}
			}
		}
		// Other instances' rates read this one's demand and its region's
		// contention profile, so either moving — a region can change while
		// the demand stays put — marks earlier-cached rates stale.
		if in.finished || in.demand() != demandBefore || in.regionIdx != regionBefore {
			e.dirtyFrom = pos + 1
		}
	}

	// Scenario ends when the target finishes.
	if e.targetIdx >= 0 && insts[e.targetIdx].finished {
		return true
	}
	for _, in := range insts {
		if !in.finished {
			return false
		}
	}
	return true
}

// nextEventStep computes the event horizon after processing step: the
// earliest future step at which anything can change — a policy control
// point or region boundary, a program arrival, an availability-curve
// breakpoint, or a phase exhausting at its current analytic rate. Every
// step strictly between the current one and the returned one is provably
// quiet (all rates and EMA inputs constant), so leap may cross them in
// closed form. Bounds are conservative: undershooting merely processes a
// quiet step explicitly, which is harmless, so each constraint rounds
// toward the present.
func (e *engine) nextEventStep(step int) int {
	cand := e.steps + 1
	for pos, in := range e.insts {
		if in.finished {
			continue
		}
		if !in.arrived {
			// Arrival fires at the first step with t ≥ StartDelay.
			if in.arrivalStep < cand {
				cand = in.arrivalStep
			}
			continue
		}
		if in.regionPending {
			// A region boundary was crossed this step; the policy must
			// be consulted at the very next one.
			return step + 1
		}
		// Next control point: first step with t + 1e-9 ≥ nextControl
		// (memoized until the next consult moves nextControl).
		if in.ctrlStep < 0 {
			in.ctrlStep = stepAtOrAfter(in.nextControl, e.dt, 1e-9)
		}
		if in.ctrlStep < cand {
			cand = in.ctrlStep
		}
		// Phase exhaustion: at the current constant rate the phase
		// survives m more full steps. Rounding stepsLeft down and
		// leaving one full step of work keeps the closed-form bulk
		// subtraction strictly short of the boundary, so the boundary
		// step itself is always processed explicitly by the shared
		// reference body. The rate was cached when the step was
		// processed and stays valid unless a later-advanced instance
		// changed its demand this step (dirtyFrom).
		rate := in.stepRate
		if pos < e.dirtyFrom {
			rate = progressRate(in, e.insts, e.es, e.hwAvail, in.threads)
			in.stepRate = rate
		}
		if rate > 0 {
			stepsLeft := in.phaseLeft() / (rate * e.dt)
			if stepsLeft < float64(e.steps+2) {
				m := int(stepsLeft) - 1
				if m < 0 {
					m = 0
				}
				if s := step + 1 + m; s < cand {
					cand = s
				}
			}
		}
	}
	// The scan refreshed every stale cached rate (the regionPending
	// early return above bails out before finishing, so it must leave
	// the mark in place); the next processStep can trust them all.
	e.dirtyFrom = 0
	// Availability-curve breakpoint (cursor already points past the
	// current step).
	if e.hwIdx < len(e.hwSched) && e.hwSched[e.hwIdx].step < cand {
		cand = e.hwSched[e.hwIdx].step
	}
	if cand <= step {
		cand = step + 1
	}
	return cand
}

// leap advances the machine in closed form across the quiet steps strictly
// between fromStep and toStep: every live program's phase absorbs
// rate·elapsed work (rates are constant — that is what made the steps
// quiet), and each EMA in the metric family takes its exact constant-input
// solution, so the state at toStep matches what explicit stepping would
// have produced up to floating-point accumulation error.
func (e *engine) leap(fromStep, toStep int) {
	k := toStep - fromStep - 1
	if k <= 0 {
		return
	}
	elapsed := float64(k) * e.dt
	es := e.es
	avail := e.hwAvail

	// Machine-wide EMA inputs, derived exactly as sampleEnv derives them.
	runnable := 0
	memGB := 0.0
	for _, in := range e.insts {
		if !in.arrived || in.finished {
			continue
		}
		runnable += in.demand()
		memGB += in.spec.Program.WorkingSetGB
	}
	es.load1.UpdateSteady(float64(runnable), elapsed)
	es.load5.UpdateSteady(float64(runnable), elapsed)
	runqNow := runnable - avail
	if runqNow < 0 {
		runqNow = 0
	}
	es.wlEMA.UpdateSteady(float64(runnable), elapsed)
	es.runqEMA.UpdateSteady(float64(runqNow), elapsed)
	pageFree := 0.1
	if memGB > es.cfg.MemoryGB {
		pageFree += (memGB - es.cfg.MemoryGB) * 0.8
	}
	es.pageEMA.UpdateSteady(pageFree, elapsed)

	for _, in := range e.insts {
		if !in.arrived || in.finished {
			continue
		}
		ext := float64(runnable - in.demand())
		if ext < 0 {
			ext = 0
		}
		in.extWL.UpdateSteady(ext, elapsed)

		// nextEventStep refreshed stepRate from final post-step state
		// whenever the processed step crossed a boundary, so it is
		// exactly the constant rate of the steps being leapt.
		rate := in.stepRate
		if rate <= 0 {
			continue
		}
		done := rate * elapsed
		if in.serialLeft > 0 {
			in.serialLeft -= done
		} else {
			in.parallelLeft -= done
		}
		in.workDone += done
		in.intervalWork += done
	}
}

// finish assembles the Result from the final instance states.
func (e *engine) finish() *Result {
	res := &Result{TargetIndex: e.targetIdx}
	duration := 0.0
	for _, in := range e.insts {
		r := in.result
		r.Finished = in.finished
		if in.finished {
			r.ExecTime = in.finishTime
		} else {
			r.ExecTime = e.s.MaxTime
		}
		r.WorkDone = in.workDone
		if r.ExecTime > duration {
			duration = r.ExecTime
		}
		res.Programs = append(res.Programs, r)
	}
	if e.targetIdx >= 0 && e.insts[e.targetIdx].finished {
		duration = e.insts[e.targetIdx].finishTime
	}
	res.Duration = duration
	return res
}

// consult invokes the instance's policy at a control point.
func consult(in *instance, insts []*instance, es *engineState, env features.Env, t float64, avail int, ctrl float64, s *Scenario) {
	prog := in.spec.Program
	code := in.codeFeats[in.regionIdx%len(in.codeFeats)]
	feat := features.Combine(code, envExcluding(env, in))

	// Instantaneous rate over the last control interval, with optional
	// measurement noise (the simulated progress itself is exact; only
	// what the policy observes is noisy).
	rate := in.lastRate
	if t > 0 && in.intervalWork > 0 {
		rate = in.intervalWork / ctrl
		if es.rateNoise > 0 {
			factor := 1 + es.rateNoise*es.noise.Norm()
			if factor < 0.1 {
				factor = 0.1
			}
			rate *= factor
		}
	}

	d := Decision{
		Time:           t,
		Features:       feat,
		Rate:           rate,
		CurrentThreads: in.threads,
		MaxThreads:     es.cfg.Cores,
		AvailableProcs: avail,
		RegionStart:    in.regionPending,
		RegionIndex:    in.regionIdx,
	}
	var n int
	if oa, isOracle := in.spec.Policy.(OracleAware); isOracle {
		oracleN, _ := oracleThreads(in, insts, es, avail)
		n = oa.DecideWithOracle(d, oracleN)
	} else {
		n = in.spec.Policy.Decide(d)
	}
	// Programs may oversubscribe (OMP_NUM_THREADS can exceed the core
	// count) but not without bound; Decision.MaxThreads advertises the
	// sensible cap, the engine only guards against runaway values.
	n = stats.ClampInt(n, 1, 4*es.cfg.Cores)
	in.threads = n
	in.result.DecisionCount++
	in.result.ThreadHist.Add(n)

	if s.RecordSamples {
		sample := Sample{
			Time:       t,
			Features:   feat,
			EnvNorm:    feat.EnvNorm(),
			Threads:    n,
			Rate:       rate,
			Region:     in.regionIdx,
			Available:  avail,
			WorkldThr:  int(feat[features.WorkloadThreads]),
			RegionName: prog.RegionAt(in.regionIdx).Name,
		}
		if s.RecordOracle {
			bestN, bestRate := oracleThreads(in, insts, es, avail)
			sample.OracleN = bestN
			sample.RateCurve = append([]float64(nil), curveFor(in, insts, es, avail)...)
			sample.BestRate = bestRate
		}
		in.result.Samples = append(in.result.Samples, sample)
	}

	in.lastRate = rate
	in.intervalWork = 0
	in.nextControl = t + ctrl
	in.regionPending = false
}

// oracleThreads evaluates every thread count and returns the best — the
// simulator analog of exhaustively running all thread counts, used to label
// training data. "Best" is the smallest count within 1% of the peak rate:
// rate curves flatten near their top, and the smallest near-optimal count
// is both a stable regression label and the efficient choice (equal speed,
// less system load).
func oracleThreads(in *instance, insts []*instance, es *engineState, avail int) (int, float64) {
	rates := curveFor(in, insts, es, avail)
	peak := -1.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	for n := 1; n <= len(rates); n++ {
		if rates[n-1] >= 0.99*peak {
			return n, rates[n-1]
		}
	}
	return 1, rates[0]
}

// RateCurve evaluates the ground-truth rate model for every thread count
// from 1 to cfg.Cores in a hypothetical environment described by the number
// of co-running programs (each assumed to demand their fair slot fully),
// their total threads and aggregate memory pressure. It backs calibration
// tests and the model-inspection tooling.
func RateCurve(cfg MachineConfig, region workload.Region, otherPrograms, otherThreads int, otherMemPressure float64, avail int) []float64 {
	cfg = cfg.withDefaults()
	out := make([]float64, cfg.Cores)
	perOther := 0
	if otherPrograms > 0 {
		perOther = otherThreads / otherPrograms
	}
	demands := make([]int, 1+otherPrograms)
	shares := make([]float64, 1+otherPrograms)
	for n := 1; n <= cfg.Cores; n++ {
		demands[0] = n
		for i := 1; i <= otherPrograms; i++ {
			demands[i] = perOther
		}
		programSharesInto(shares, demands, avail)
		out[n-1] = regionRate(&cfg, &region, n, shares[0], otherThreads, otherMemPressure, avail)
	}
	return out
}
