package moe_test

import (
	"bytes"
	"fmt"
	"testing"

	"moe"
	"moe/internal/atomicio"
	"moe/internal/chaos"
	"moe/internal/telemetry"
)

// telemetryFaults staggers one fault of every observation-path kind across
// the synthetic ckptObservation stream (15 seconds of decision clock).
func telemetryFaults() []chaos.ScheduledFault {
	return []chaos.ScheduledFault{
		{Fault: chaos.FeatureNoise{Sigma: 0.4}, Schedule: chaos.Window(1, 3)},
		{Fault: &chaos.Dropout{}, Schedule: chaos.Window(5, 2)},
		{Fault: chaos.Corrupt{Prob: 0.5}, Schedule: chaos.Window(8, 2)},
		{Fault: chaos.HotplugStorm{MaxProcs: ckptMaxThreads}, Schedule: chaos.Window(11, 2)},
	}
}

// TestRuntimeTelemetryByteIdentity is the observe-never-steer guarantee at
// the public API: the same observation stream through an instrumented
// runtime (registry sink + NDJSON trace + decision detail) and a silent one
// must produce byte-identical decision sequences — on the clean mixture and
// on a chaos-wrapped one. The trace must also round-trip through ReadTrace
// with one coherent record per decision.
func TestRuntimeTelemetryByteIdentity(t *testing.T) {
	const steps = 120
	build := func(wrap bool) moe.Policy {
		m, err := moe.NewMixture(moe.CanonicalExperts())
		if err != nil {
			t.Fatal(err)
		}
		if !wrap {
			return m
		}
		inj, err := chaos.NewInjector(m, 77, telemetryFaults()...)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	for _, wrap := range []bool{false, true} {
		name := "mixture"
		if wrap {
			name = "chaos-wrapped"
		}
		t.Run(name, func(t *testing.T) {
			silent, err := moe.NewRuntime(build(wrap), ckptMaxThreads)
			if err != nil {
				t.Fatal(err)
			}
			loud, err := moe.NewRuntime(build(wrap), ckptMaxThreads)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			var buf bytes.Buffer
			tw := telemetry.NewTraceWriter(&buf)
			loud.SetTelemetry(telemetry.MultiSink(telemetry.NewRegistrySink(reg), tw))

			for i := 0; i < steps; i++ {
				obs := ckptObservation(i)
				want := silent.Decide(obs)
				got := loud.Decide(obs)
				if got != want {
					t.Fatalf("decision %d diverged under telemetry: %d vs %d", i, got, want)
				}
			}
			if err := tw.Flush(); err != nil {
				t.Fatal(err)
			}
			recs, err := telemetry.ReadTrace(&buf)
			if err != nil {
				t.Fatalf("trace round-trip: %v", err)
			}
			if len(recs) != steps {
				t.Fatalf("trace has %d records, want %d", len(recs), steps)
			}
			selected := 0
			for i, rec := range recs {
				if rec.Seq != i {
					t.Fatalf("record %d has seq %d", i, rec.Seq)
				}
				if rec.Threads < 1 || rec.Threads > ckptMaxThreads {
					t.Fatalf("record %d: threads %d out of range", i, rec.Threads)
				}
				if len(rec.RawFeatures) != len(rec.Features) || len(rec.Features) == 0 {
					t.Fatalf("record %d: feature vectors missing", i)
				}
				if rec.SelectedExpert >= 0 {
					selected++
					if rec.FallbackRung == "" {
						t.Fatalf("record %d: expert selected but no rung", i)
					}
				}
			}
			if selected == 0 {
				t.Error("detail never reported a selected expert — detailer not found through the wrap chain")
			}
			if got := reg.Counter("moe_decisions_total", "").Value(); got != steps {
				t.Errorf("moe_decisions_total = %d, want %d", got, steps)
			}
			if reg.Histogram("moe_decision_seconds", "", nil).Count() != steps {
				t.Error("decision latency histogram incomplete")
			}
		})
	}
}

// TestMixtureStatsSnapshotThroughWrapper is the regression test for the
// wrapped-policy blind spot: MixtureStatsSnapshot used to type-assert the
// runtime's policy directly, so wrapping the mixture (in a chaos injector,
// say) silently disabled mixture analysis. The Unwrap convention restores
// it.
func TestMixtureStatsSnapshotThroughWrapper(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.NewInjector(m, 7, telemetryFaults()...)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(inj, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rt.Decide(ckptObservation(i))
	}
	st, ok := rt.MixtureStatsSnapshot()
	if !ok {
		t.Fatal("MixtureStatsSnapshot did not see through the injector")
	}
	if st.Decisions != 20 {
		t.Errorf("snapshot decisions = %d, want 20", st.Decisions)
	}

	// A runtime whose chain contains no mixture still reports ok=false.
	plain, err := moe.NewRuntime(moe.NewDefaultPolicy(), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.MixtureStatsSnapshot(); ok {
		t.Error("non-mixture policy must report ok=false")
	}
}

// TestRuntimeCheckpointDegradedVisible pins the degraded-store path end to
// end: appends keep succeeding, a periodic snapshot write fails, the
// runtime latches the error and keeps deciding — and the failure is
// visible through CheckpointErr, the trace records, and the registry gauge,
// while recovery from the surviving journal stays bit-consistent with an
// uninterrupted run.
func TestRuntimeCheckpointDegradedVisible(t *testing.T) {
	const total, every = 30, 10

	// Reference run, never checkpointed.
	ref, err := moe.NewRuntime(ckptPolicies(t)["mixture"](), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, total)
	for i := 0; i < total; i++ {
		want[i] = ref.Decide(ckptObservation(i))
	}

	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(ckptPolicies(t)["mixture"](), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	store.SetMetrics(reg)
	var buf bytes.Buffer
	tw := telemetry.NewTraceWriter(&buf)
	rt.SetTelemetry(telemetry.MultiSink(telemetry.NewRegistrySink(reg), tw))
	if err := rt.AttachStore(store, every); err != nil {
		t.Fatal(err)
	}
	// From here on every snapshot write dies at the rename — the journal is
	// untouched and keeps accepting appends.
	store.SetSnapshotFault(func(stage atomicio.Stage) error {
		if stage == atomicio.StageRename {
			return fmt.Errorf("injected: disk pulled at %s", stage)
		}
		return nil
	})

	got := make([]int, total)
	for i := 0; i < total; i++ {
		got[i] = rt.Decide(ckptObservation(i))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d diverged after checkpoint degradation: %d vs %d", i, got[i], want[i])
		}
	}
	if rt.CheckpointErr() == nil {
		t.Fatal("snapshot failure did not latch")
	}

	// The failure is visible everywhere it should be.
	if reg.Gauge("moe_checkpoint_degraded", "").Value() != 1 {
		t.Error("degraded gauge not raised")
	}
	if reg.Counter("moe_checkpoint_errors_total", "").Value() == 0 {
		t.Error("degraded decisions not counted")
	}
	if reg.Counter("checkpoint_write_errors_total", "", "op", "snapshot").Value() == 0 {
		t.Error("store did not count the failed snapshot")
	}
	if reg.Histogram("checkpoint_append_seconds", "", nil).Count() == 0 {
		t.Error("store did not time any appends")
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].CheckpointErr == "" {
		t.Error("trace records after the failure must carry the latched error")
	}

	// Recovery consistency: the journal holds every append up to the failed
	// snapshot at decision `every`; a resumed runtime replays them and then
	// finishing the stream matches the reference run exactly.
	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := moe.NewRuntime(ckptPolicies(t)["mixture"](), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := resumed.Resume(store2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Decisions() != every {
		t.Fatalf("recovered %d decisions, want %d\nreport: %v", resumed.Decisions(), every, rec.Report)
	}
	for i := every; i < total; i++ {
		if n := resumed.Decide(ckptObservation(i)); n != want[i] {
			t.Fatalf("recovered decision %d diverged: %d vs %d", i, n, want[i])
		}
	}
}

// benchRuntime builds a mixture runtime for the Decide benchmarks.
func benchRuntime(b *testing.B) *moe.Runtime {
	b.Helper()
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		b.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, ckptMaxThreads)
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkDecide measures the uninstrumented hot path; its instrumented
// twin below bounds the telemetry overhead (the acceptance bar is ≤10%).
func BenchmarkDecide(b *testing.B) {
	rt := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Decide(ckptObservation(i % 256))
	}
}

func BenchmarkDecideInstrumented(b *testing.B) {
	rt := benchRuntime(b)
	rt.SetTelemetry(telemetry.NewRegistrySink(telemetry.NewRegistry()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Decide(ckptObservation(i % 256))
	}
}

// TestPoolTelemetrySeries pins the moe_pool_* family: an evolving runtime
// must publish pool size, epoch, birth/retirement counters and per-slot
// ages that agree with the mixture's own snapshot — and a frozen mixture
// must leave the whole family untouched.
func TestPoolTelemetrySeries(t *testing.T) {
	mix, err := moe.NewEvolvingMixture(moe.CanonicalExperts(),
		moe.EvolutionConfig{Period: 10, MinAge: 20, MinPool: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(mix, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(telemetry.NewRegistrySink(reg))
	for i := 0; i < 120; i++ {
		rt.Decide(ckptObservation(i))
	}

	st := mix.Snapshot()
	if st.PoolBirths == 0 {
		t.Fatal("lifecycle never fired; the test is vacuous")
	}
	if got := reg.Counter("moe_pool_births_total", "").Value(); got != int64(st.PoolBirths) {
		t.Errorf("moe_pool_births_total = %d, want %d", got, st.PoolBirths)
	}
	if got := reg.Counter("moe_pool_retirements_total", "").Value(); got != int64(st.PoolRetirements) {
		t.Errorf("moe_pool_retirements_total = %d, want %d", got, st.PoolRetirements)
	}
	if got := reg.Gauge("moe_pool_size", "").Value(); got != float64(len(st.ExpertNames)) {
		t.Errorf("moe_pool_size = %v, want %d", got, len(st.ExpertNames))
	}
	if got := reg.Gauge("moe_pool_epoch", "").Value(); got != float64(st.PoolEpoch) {
		t.Errorf("moe_pool_epoch = %v, want %d", got, st.PoolEpoch)
	}
	// Founding experts have lived every decision; their age gauge must say
	// so (slot 0 is a founder: retirements here are bounded by MinPool=2,
	// and the lowest-index retiree rule never fires before MinAge).
	if got := reg.Gauge("moe_pool_expert_age", "", "expert", "0").Value(); got <= 0 {
		t.Errorf("moe_pool_expert_age{expert=0} = %v, want > 0", got)
	}

	// Frozen mixture: the family stays at zero.
	frozen, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	frt, err := moe.NewRuntime(frozen, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	freg := telemetry.NewRegistry()
	frt.SetTelemetry(telemetry.NewRegistrySink(freg))
	for i := 0; i < 60; i++ {
		frt.Decide(ckptObservation(i))
	}
	if got := freg.Counter("moe_pool_births_total", "").Value(); got != 0 {
		t.Errorf("frozen pool published %d births", got)
	}
	if got := freg.Gauge("moe_pool_size", "").Value(); got != 0 {
		t.Errorf("frozen pool published size %v (family must stay silent)", got)
	}
}
