#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the moed daemon: serve JSON and
# NDJSON decisions, watch a chaos tenant get quarantined without touching a
# healthy one, scrape the serve_* metrics, SIGTERM-drain within the window
# (exit code 0 required), then restart on the same checkpoint directory and
# prove the decision counters resumed.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
MOED_PID=""
cleanup() {
    [ -n "$MOED_PID" ] && kill -9 "$MOED_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

ADDR=127.0.0.1:9177
BASE="http://$ADDR"
CKPT="$WORK/ckpt"

go build -o "$WORK/moed" ./cmd/moed

start_moed() {
    "$WORK/moed" -listen "$ADDR" -checkpoint-dir "$CKPT" -fault-injection \
        -wedge-timeout 500ms -drain-window 10s &
    MOED_PID=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "serve-smoke: moed never came up" >&2
    exit 1
}

# body <tenant> <from> <n> — one decide request with a monotone clock.
body() {
    python3 - "$1" "$2" "$3" <<'PY'
import json, sys
tenant, start, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
obs = [{"time": 0.25*k,
        "features": [0.15*(j+1) + 0.02*((k*7+j*3) % 11) for j in range(9)] + [32.0],
        "region_start": k % 4 == 0, "rate": 100, "available_procs": 32}
       for k in range(start, start+n)]
print(json.dumps({"tenant": tenant, "observations": obs}))
PY
}

# decisions_of <response-json> — the tenant's decision counter.
decisions_of() { python3 -c 'import json,sys; print(json.load(sys.stdin)["decisions"])'; }

start_moed
echo "serve-smoke: moed up on $ADDR"

# 1. JSON decide: two batches, counter must advance 8 -> 16.
R1=$(body smoke-a 0 8 | curl -fsS -X POST -H 'Content-Type: application/json' --data-binary @- "$BASE/v1/decide")
R2=$(body smoke-a 8 8 | curl -fsS -X POST -H 'Content-Type: application/json' --data-binary @- "$BASE/v1/decide")
[ "$(echo "$R1" | decisions_of)" = 8 ] || { echo "serve-smoke: first batch decisions != 8: $R1" >&2; exit 1; }
[ "$(echo "$R2" | decisions_of)" = 16 ] || { echo "serve-smoke: second batch decisions != 16: $R2" >&2; exit 1; }

# 2. NDJSON streaming: two lines in, two responses out.
{ body smoke-b 0 4; body smoke-b 4 4; } \
    | curl -fsS -X POST -H 'Content-Type: application/x-ndjson' --data-binary @- "$BASE/v1/decide" \
    > "$WORK/ndjson.out"
[ "$(wc -l < "$WORK/ndjson.out")" = 2 ] || { echo "serve-smoke: NDJSON line count" >&2; cat "$WORK/ndjson.out" >&2; exit 1; }

# 3. Chaos tenant faults and is quarantined; the healthy tenant is not.
for i in 0 1 2 3 4 5; do
    body chaos-panic-smoke $((i*10)) 10 \
        | curl -sS -o /dev/null -X POST -H 'Content-Type: application/json' --data-binary @- "$BASE/v1/decide" || true
done
TENANTS=$(curl -fsS "$BASE/v1/tenants")
echo "$TENANTS" | python3 -c '
import json, sys
ts = {t["id"]: t for t in json.load(sys.stdin)}
assert ts["chaos-panic-smoke"]["breaker_trips"] >= 1, ts
assert ts["smoke-a"]["breaker_trips"] == 0, ts
assert ts["smoke-a"]["state"] == "ok", ts
'

# 4. Metrics exposition carries the envelope counters.
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
grep -q '^serve_decisions_total ' "$WORK/metrics.txt"
grep -q '^serve_panics_recovered_total ' "$WORK/metrics.txt"
grep -q 'serve_requests_total{code="200"} ' "$WORK/metrics.txt"
curl -fsS "$BASE/metrics.json" | python3 -m json.tool > /dev/null

# 5. SIGTERM drain: bounded, clean, exit code 0.
kill -TERM "$MOED_PID"
DRAIN_START=$(date +%s)
if ! wait "$MOED_PID"; then
    echo "serve-smoke: moed exited non-zero after SIGTERM" >&2
    exit 1
fi
MOED_PID=""
DRAIN_SECS=$(( $(date +%s) - DRAIN_START ))
[ "$DRAIN_SECS" -le 12 ] || { echo "serve-smoke: drain took ${DRAIN_SECS}s, over the window" >&2; exit 1; }
echo "serve-smoke: drained cleanly in ~${DRAIN_SECS}s"

# 6. Restart on the same directory: smoke-a resumes at 16 and continues.
start_moed
R3=$(body smoke-a 16 8 | curl -fsS -X POST -H 'Content-Type: application/json' --data-binary @- "$BASE/v1/decide")
[ "$(echo "$R3" | decisions_of)" = 24 ] || { echo "serve-smoke: post-restart decisions != 24 (resume lost state): $R3" >&2; exit 1; }
kill -TERM "$MOED_PID" && wait "$MOED_PID" || { echo "serve-smoke: second drain failed" >&2; exit 1; }
MOED_PID=""

echo "serve-smoke: OK"
