package checkpoint

import (
	"fmt"

	"moe/internal/core"
	"moe/internal/policy"
	"moe/internal/sim"
)

// Checkpointable is the escape hatch for host-supplied policies: a policy
// implementing it is checkpointed through its own opaque, deterministic
// byte encoding. The built-in policies are handled natively and do not
// need it.
type Checkpointable interface {
	// CheckpointSave returns a deterministic encoding of the policy's
	// mutable state.
	CheckpointSave() ([]byte, error)
	// CheckpointLoad restores state captured by CheckpointSave; the
	// policy must have been constructed identically. On error the policy
	// must be unchanged.
	CheckpointLoad([]byte) error
}

// unwrap follows a wrapper policy (chaos injector, instrumentation shim —
// the runtime's Unwrapper convention) down one level, so wrapped built-ins
// checkpoint as themselves. A wrapper with its own mutable state must
// implement Checkpointable instead; the interface check always wins over
// unwrapping.
func unwrap(p sim.Policy) (sim.Policy, bool) {
	u, ok := p.(interface{ Unwrap() sim.Policy })
	if !ok {
		return p, false
	}
	return u.Unwrap(), true
}

// CapturePolicy extracts the checkpoint state of a policy. Built-in
// stateful policies (mixture, online, analytic) are captured natively;
// known-stateless policies yield a stateless marker; wrappers are walked
// through Unwrap; anything else must implement Checkpointable.
func CapturePolicy(p sim.Policy) (PolicyState, error) {
	switch pp := p.(type) {
	case *core.Mixture:
		st, err := pp.ExportState()
		if err != nil {
			return PolicyState{}, err
		}
		return PolicyState{Kind: PolicyMixture, Mixture: st}, nil
	case *policy.Online:
		st := pp.ExportState()
		return PolicyState{Kind: PolicyOnline, Online: &st}, nil
	case *policy.Analytic:
		st := pp.ExportState()
		return PolicyState{Kind: PolicyAnalytic, Analytic: &st}, nil
	case *policy.Default, *policy.Offline, *policy.Oracle, sim.OraclePolicy, sim.Func:
		return PolicyState{Kind: PolicyStateless}, nil
	}
	if c, ok := p.(Checkpointable); ok {
		data, err := c.CheckpointSave()
		if err != nil {
			return PolicyState{}, err
		}
		return PolicyState{Kind: PolicyOpaque, Opaque: data}, nil
	}
	if inner, ok := unwrap(p); ok {
		return CapturePolicy(inner)
	}
	return PolicyState{}, fmt.Errorf("checkpoint: policy %q is not checkpointable", p.Name())
}

// RestorePolicy overlays captured state onto an identically constructed
// policy. The state's kind must match the policy's concrete type; on error
// the policy is unchanged.
func RestorePolicy(p sim.Policy, st PolicyState) error {
	switch pp := p.(type) {
	case *core.Mixture:
		if st.Kind != PolicyMixture || st.Mixture == nil {
			return kindMismatch(st.Kind, PolicyMixture)
		}
		return pp.RestoreState(st.Mixture)
	case *policy.Online:
		if st.Kind != PolicyOnline || st.Online == nil {
			return kindMismatch(st.Kind, PolicyOnline)
		}
		return pp.RestoreState(*st.Online)
	case *policy.Analytic:
		if st.Kind != PolicyAnalytic || st.Analytic == nil {
			return kindMismatch(st.Kind, PolicyAnalytic)
		}
		return pp.RestoreState(*st.Analytic)
	case *policy.Default, *policy.Offline, *policy.Oracle, sim.OraclePolicy, sim.Func:
		if st.Kind != PolicyStateless {
			return kindMismatch(st.Kind, PolicyStateless)
		}
		return nil
	}
	if c, ok := p.(Checkpointable); ok {
		if st.Kind != PolicyOpaque {
			return kindMismatch(st.Kind, PolicyOpaque)
		}
		return c.CheckpointLoad(st.Opaque)
	}
	if inner, ok := unwrap(p); ok {
		return RestorePolicy(inner, st)
	}
	return fmt.Errorf("checkpoint: policy %q is not checkpointable", p.Name())
}

func kindMismatch(got, want string) error {
	return fmt.Errorf("checkpoint: policy state of kind %q cannot restore a %q policy", got, want)
}
