package moe

import "moe/internal/telemetry"

// Observability. A Runtime is silent by default: the decision hot path
// tests one pointer and does nothing else. SetTelemetry attaches a sink —
// every subsequent Decide then assembles a telemetry.Record (inputs,
// repairs, mixture internals when the policy can report them, checkpoint
// latencies, the decision itself) and hands it to the sink under the
// decision lock. Telemetry observes and never steers: with or without a
// sink the decision sequence is bit-identical, pinned by the byte-identity
// tests in telemetry_test.go.

type (
	// TelemetryRecord is the structured trace of one decision.
	TelemetryRecord = telemetry.Record
	// TelemetrySink receives completed decision records.
	TelemetrySink = telemetry.Sink
	// TelemetryRegistry is the process-wide metrics registry.
	TelemetryRegistry = telemetry.Registry
)

// SetTelemetry attaches sink (nil detaches). When the wrapped policy — or
// anything it wraps, walked through Unwrap — implements telemetry.Detailer,
// per-decision mixture internals (gating errors, selection, fallback rung,
// health transitions) are enabled and folded into every record. When sink
// additionally implements telemetry.BatchSink, DecideBatch emits one batch
// summary record per call. Detaching turns detail capture back off (when the
// detailer supports it), re-arming the batch fast path.
func (r *Runtime) SetTelemetry(sink telemetry.Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = sink
	r.batchSink = nil
	if sink == nil {
		if d, ok := r.detailer.(interface{ DisableDecisionDetail() }); ok {
			d.DisableDecisionDetail()
		}
		r.detailer = nil
		return
	}
	r.batchSink, _ = sink.(telemetry.BatchSink)
	r.detailer = nil
	unwrapTo(r.policy, func(p Policy) bool {
		d, ok := p.(telemetry.Detailer)
		if ok {
			d.EnableDecisionDetail()
			r.detailer = d
		}
		return ok
	})
}
