package experiments

import (
	"moe/internal/features"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

// AblationGating compares expert-selection mechanisms with the same expert
// pool: the paper's hyperplane partition (with its offline prior), the
// hyperplane partition without the offline prior (pure online, §5.3 as
// written), a pure recent-accuracy EMA gate, and a random gate (lower
// bound). The oracle policy bounds the achievable headroom.
func (l *Lab) AblationGating(sc Scale) (*Table, error) {
	names := []PolicyName{
		PolicyMixture,
		PolicyMixtureNoPretrain,
		PolicyMixtureAccuracyGate,
		PolicyMixtureRandomGate,
		PolicyOracle,
	}
	labels := map[PolicyName]string{
		PolicyMixture:             "hyperplane+prior",
		PolicyMixtureNoPretrain:   "hyperplane online-only",
		PolicyMixtureAccuracyGate: "accuracy EMA gate",
		PolicyMixtureRandomGate:   "random gate",
		PolicyOracle:              "oracle (bound)",
	}
	t := &Table{
		Title:   "Ablation — expert selector variants (speedup over default)",
		Columns: []string{"small/low", "large/low"},
	}
	kinds := []struct {
		size workload.Size
		freq trace.Frequency
	}{
		{workload.Small, trace.LowFrequency},
		{workload.Large, trace.LowFrequency},
	}
	// One grid job per (selector variant, kind, target) cell, regrouped
	// below in the serial iteration order.
	nk, nt := len(kinds), len(sc.Targets)
	cells, err := grid(l, len(names)*nk*nt, func(i int) (float64, error) {
		name := names[i/(nk*nt)]
		kind := kinds[(i/nt)%nk]
		v, _, err := l.targetScenarioSpeedups(sc.Targets[i%nt], kind.size, kind.freq, []PolicyName{name}, sc)
		if err != nil {
			return 0, err
		}
		return v[name], nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		vals := make([]float64, 0, nk)
		for ki := range kinds {
			sp := cells[(ni*nk+ki)*nt : (ni*nk+ki+1)*nt]
			vals = append(vals, stats.HMean(sp))
		}
		t.AddRow(labels[name], vals...)
	}
	return t, nil
}

// AblationFeatures measures how the thread predictor degrades when trained
// on reduced feature sets: environment-only (no code features) and
// code-only (no environment), versus the full 10 features — the design
// choice behind Table 1's mixed feature set.
func (l *Lab) AblationFeatures() (*Table, error) {
	t := &Table{
		Title:   "Ablation — feature-set content (leave-one-program-out accuracy)",
		Columns: []string{"accuracy", "MAE"},
	}
	masks := []struct {
		label string
		keep  func(i int) bool
	}{
		{"full 10 features", func(int) bool { return true }},
		{"environment only", func(i int) bool { return i >= 3 }},
		{"code only", func(i int) bool { return i < 3 }},
	}
	for _, m := range masks {
		acc, mae, err := l.maskedCV(m.keep)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.label, acc, mae)
	}
	return t, nil
}

// maskedCV runs leave-one-program-out cross validation of the thread
// predictor with a feature mask.
func (l *Lab) maskedCV(keep func(i int) bool) (accuracy, mae float64, err error) {
	mask := make([]bool, features.Dim)
	for i := range mask {
		mask[i] = keep(i)
	}
	metrics, err := training.CrossValidateThreadMasked(l.DS, mask)
	if err != nil {
		return 0, 0, err
	}
	return metrics.Accuracy, metrics.MAE, nil
}
