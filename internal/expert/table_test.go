package expert

import (
	"strings"
	"testing"
)

func TestTableRoundTripCanonical4(t *testing.T) {
	orig := Canonical4()
	text := FormatTable(orig)
	parsed, err := ParseTable(text)
	if err != nil {
		t.Fatalf("ParseTable(FormatTable(Canonical4())): %v", err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("round trip: %d experts, want %d", len(parsed), len(orig))
	}
	for i, e := range parsed {
		o := orig[i]
		if e.Name != o.Name || e.MaxThreads != o.MaxThreads || e.TrainedOn != o.TrainedOn {
			t.Errorf("expert %d: metadata %q/%d/%q, want %q/%d/%q",
				i, e.Name, e.MaxThreads, e.TrainedOn, o.Name, o.MaxThreads, o.TrainedOn)
		}
		for j, w := range o.Threads.Coefficients() {
			if got := e.Threads.Coefficients()[j]; got != w {
				t.Errorf("expert %s w[%d] = %v, want %v", e.Name, j, got, w)
			}
		}
		oe := o.Env.(NormEnvModel)
		pe := e.Env.(NormEnvModel)
		for j, m := range oe.Model.Coefficients() {
			if got := pe.Model.Coefficients()[j]; got != m {
				t.Errorf("expert %s m[%d] = %v, want %v", e.Name, j, got, m)
			}
		}
	}
	// Second render must be byte-identical.
	if again := FormatTable(parsed); again != text {
		t.Errorf("re-rendered table differs:\n%s\nvs\n%s", again, text)
	}
}

func TestParseTableCommentsAndBlanks(t *testing.T) {
	text := "# Table 1\n\n" + FormatTable(Canonical4()) + "\n# trailing comment\n"
	set, err := ParseTable(text)
	if err != nil {
		t.Fatalf("ParseTable with comments: %v", err)
	}
	if len(set) != 4 {
		t.Errorf("got %d experts, want 4", len(set))
	}
}

func TestParseTableRejects(t *testing.T) {
	w := "1, -1.5, 0.8, -0.6, 0.9, 0.1, 0.1, -0.1, -0.1, 0.1, -1.2"
	nanW := strings.Replace(w, "0.8", "NaN", 1)
	infW := strings.Replace(w, "0.8", "-Inf", 1)
	hugeW := strings.Replace(w, "0.8", "4.2e12", 1)
	cases := map[string]string{
		"too few fields":     "E1|32|x|" + w,
		"empty name":         " |32|x|" + w + "|" + w,
		"bad max threads":    "E1|zero|x|" + w + "|" + w,
		"zero max threads":   "E1|0|x|" + w + "|" + w,
		"bad w row":          "E1|32|x|1, banana|" + w,
		"bad m row":          "E1|32|x|" + w + "|1, banana",
		"NaN w row":          "E1|32|x|" + nanW + "|" + w,
		"Inf m row":          "E1|32|x|" + w + "|" + infW,
		"huge coefficient":   "E1|32|x|" + hugeW + "|" + w,
		"dimension mismatch": "E1|32|x|1, 2, 3|" + w,
		"wrong feature dim":  "E1|32|x|1, 2, 3|4, 5, 6",
		"duplicate name":     "E1|32|x|" + w + "|" + w + "\nE1|32|x|" + w + "|" + w,
		"empty table":        "# nothing here\n",
	}
	for name, text := range cases {
		if set, err := ParseTable(text); err == nil {
			t.Errorf("%s: ParseTable accepted %q → %d experts", name, text, len(set))
		}
	}
}

// FuzzParseTable checks the table parser never panics and that any table
// it accepts is a valid expert set that re-renders and re-parses stably.
func FuzzParseTable(f *testing.F) {
	canon := FormatTable(Canonical4())
	f.Add(canon)
	f.Add("# comment only\n")
	f.Add(strings.Replace(canon, "|32|", "|0|", 1))
	f.Add(strings.Replace(canon, "E1", "E2", 1))
	f.Add("E1|32|x|1, 2|3, 4\n")
	f.Add("a|1|t|" + strings.Repeat("1 ", 10) + "2|" + strings.Repeat("1 ", 10) + "2\n")
	f.Add("a|1||1 2 3 4 5 6 7 8 9 10 11|1 2 3 4 5 6 7 8 9 10 11")
	f.Add("a|1||NaN 2 3 4 5 6 7 8 9 10 11|1 2 3 4 5 6 7 8 9 10 11")
	f.Add("a|1||1 2 3 4 5 6 7 8 9 10 Inf|1 2 3 4 5 -Inf 7 8 9 10 11")
	f.Add("a|1||1e300 2 3 4 5 6 7 8 9 10 11|1 2 3 4 5 6 7 8 9 10 1e300")

	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseTable(s)
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ParseTable(%q) returned invalid set: %v", s, err)
		}
		// Accepted tables re-render and re-parse to the same rendering.
		text := FormatTable(set)
		again, err := ParseTable(text)
		if err != nil {
			t.Fatalf("re-parsing rendered table of %q: %v", s, err)
		}
		if FormatTable(again) != text {
			t.Fatalf("table of %q does not re-render stably", s)
		}
	})
}
