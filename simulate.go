package moe

import (
	"fmt"

	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Baseline policy constructors (§6.3). Each call returns a fresh stateful
// instance; never share one across concurrent runs.

// NewDefaultPolicy returns the OpenMP default policy: one thread per
// available processor.
func NewDefaultPolicy() Policy { return policy.NewDefault() }

// NewOnlinePolicy returns the hill-climbing adaptive scheme.
func NewOnlinePolicy() Policy { return policy.NewOnline() }

// NewOfflinePolicy returns the single offline-model policy built from the
// first expert of the set (typically a monolithic pool from
// BuildExperts(ds, 1)).
func NewOfflinePolicy(set ExpertSet) (Policy, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return policy.NewOffline(set[0].Threads, set[0].MaxThreads), nil
}

// NewAnalyticPolicy returns the interval-exploration analytic policy; seed
// drives its probe randomness (0 selects a fixed default).
func NewAnalyticPolicy(seed uint64) Policy {
	return policy.NewAnalytic(policy.AnalyticOptions{Seed: seed})
}

// Programs returns the names of the built-in benchmark models (§6.2).
func Programs() []string { return workload.Names() }

// HardwareFrequency selects how often the simulated processor count
// changes (§6.4).
type HardwareFrequency = trace.Frequency

// Hardware-change frequencies.
const (
	LowFrequency  = trace.LowFrequency
	HighFrequency = trace.HighFrequency
	StaticSystem  = trace.Static
)

// Simulation describes one co-execution experiment on the simulated
// 32-core evaluation machine: a target program driven by Policy while
// Workload programs loop under the OpenMP default, with processor
// availability changing at the given frequency.
type Simulation struct {
	// Target is the benchmark the policy controls (see Programs).
	Target string
	// Policy decides the target's thread counts.
	Policy Policy
	// Workload programs co-execute (empty = isolated system).
	Workload []string
	// WorkloadPolicies optionally drive the workload programs
	// (positional; nil entries and missing tail entries fall back to the
	// OpenMP default). This is how the §7.4 smart-vs-smart experiment is
	// expressed.
	WorkloadPolicies []Policy
	// Frequency of hardware changes (default LowFrequency; use
	// StaticSystem for a fixed machine).
	Frequency HardwareFrequency
	// Seed makes the run reproducible; the same seed replays the same
	// external conditions for every policy (§6.4).
	Seed uint64
	// MaxTime bounds the run in virtual seconds (default 3000).
	MaxTime float64
	// Cores overrides the machine size (default 32, Table 2).
	Cores int
	// Affinity enables affinity scheduling (§7.6).
	Affinity bool
	// ReferenceStepping forces the fixed-dt reference engine. By default
	// simulations run on the event-horizon engine, which produces the
	// same observables within 1e-9 relative at a fraction of the cost.
	ReferenceStepping bool
}

// SimulationResult reports a finished simulation.
type SimulationResult struct {
	// ExecTime is the target's completion time in virtual seconds.
	ExecTime float64
	// WorkloadThroughput is the co-runners' aggregate work rate.
	WorkloadThroughput float64
	// Decisions is how many times the policy was consulted.
	Decisions int
}

// Simulate runs the experiment and returns the target's outcome.
func Simulate(s Simulation) (*SimulationResult, error) {
	if s.Policy == nil {
		return nil, fmt.Errorf("moe: simulation needs a policy")
	}
	prog, err := workload.ByName(s.Target)
	if err != nil {
		return nil, err
	}
	maxTime := s.MaxTime
	if maxTime <= 0 {
		maxTime = 3000
	}
	machine := sim.Eval32()
	if s.Cores > 0 {
		machine.Cores = s.Cores
	}
	machine.Affinity = s.Affinity
	hw, err := trace.GenerateHardware(trace.NewRNG(s.Seed^0x5ce4a510), machine.Cores, s.Frequency, maxTime)
	if err != nil {
		return nil, err
	}
	machine.Hardware = hw

	specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: s.Policy, Target: true}}
	for i, name := range s.Workload {
		wp, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		var wpol sim.Policy = policy.NewDefault()
		if i < len(s.WorkloadPolicies) && s.WorkloadPolicies[i] != nil {
			wpol = s.WorkloadPolicies[i]
		}
		specs = append(specs, sim.ProgramSpec{Program: wp.Clone(), Policy: wpol, Loop: true})
	}
	stepping := sim.SteppingEvent
	if s.ReferenceStepping {
		stepping = sim.SteppingFixed
	}
	res, err := sim.Run(sim.Scenario{
		Stepping:  stepping,
		Machine:   machine,
		Programs:  specs,
		MaxTime:   maxTime,
		RateNoise: 0.12,
		Seed:      s.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr, err := res.Target()
	if err != nil {
		return nil, err
	}
	if !tr.Finished {
		return nil, fmt.Errorf("moe: target %s did not finish within %.0fs", s.Target, maxTime)
	}
	return &SimulationResult{
		ExecTime:           tr.ExecTime,
		WorkloadThroughput: res.WorkloadThroughput(),
		Decisions:          tr.DecisionCount,
	}, nil
}
