package features

import (
	"fmt"
	"sort"
)

// Impact records how crucial one feature is to one model, following the
// paper's definition (§5.2.2): "feature impact (π) is the drop in prediction
// accuracy of the model when this feature alone was removed from the
// feature-set". Fig 6 shows these values normalized per expert.
type Impact struct {
	Feature int     // feature index (0-based; Table 1's f_{i+1})
	Name    string  // feature name from Table 1
	Drop    float64 // raw accuracy drop when the feature is ablated
	Share   float64 // Drop normalized over all features of the model
}

// AccuracyFn evaluates a model variant trained without the given feature
// (−1 means the full feature set) and returns its prediction accuracy in
// [0, 1]. The concrete retraining lives in internal/training; this package
// only owns the π bookkeeping so the definition sits next to the feature
// set.
type AccuracyFn func(withoutFeature int) (float64, error)

// ComputeImpacts evaluates π for every feature of one model. The returned
// slice is ordered by feature index; Share values sum to 1 when any feature
// has positive impact.
func ComputeImpacts(accuracy AccuracyFn) ([]Impact, error) {
	full, err := accuracy(-1)
	if err != nil {
		return nil, fmt.Errorf("features: full-model accuracy: %w", err)
	}
	impacts := make([]Impact, Dim)
	total := 0.0
	for i := 0; i < Dim; i++ {
		reduced, err := accuracy(i)
		if err != nil {
			return nil, fmt.Errorf("features: accuracy without %s: %w", Names[i], err)
		}
		drop := full - reduced
		if drop < 0 {
			drop = 0 // removing a feature never "counts negatively" toward π
		}
		impacts[i] = Impact{Feature: i, Name: Names[i], Drop: drop}
		total += drop
	}
	if total > 0 {
		for i := range impacts {
			impacts[i].Share = impacts[i].Drop / total
		}
	}
	return impacts, nil
}

// RankImpacts returns the impacts sorted by descending share (stable for
// equal shares, preserving Table 1 order).
func RankImpacts(impacts []Impact) []Impact {
	out := append([]Impact(nil), impacts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// AverageImpacts averages π across several models (the value printed under
// each pie chart in Fig 6 is the per-feature impact averaged across all
// experts). All slices must have length Dim.
func AverageImpacts(perModel [][]Impact) ([]Impact, error) {
	if len(perModel) == 0 {
		return nil, fmt.Errorf("features: no models to average")
	}
	avg := make([]Impact, Dim)
	for i := 0; i < Dim; i++ {
		avg[i] = Impact{Feature: i, Name: Names[i]}
	}
	for _, impacts := range perModel {
		if len(impacts) != Dim {
			return nil, fmt.Errorf("features: impact slice has length %d, want %d", len(impacts), Dim)
		}
		for i, im := range impacts {
			avg[i].Drop += im.Drop
			avg[i].Share += im.Share
		}
	}
	n := float64(len(perModel))
	for i := range avg {
		avg[i].Drop /= n
		avg[i].Share /= n
	}
	return avg, nil
}
