package training

import (
	"sync"
	"testing"

	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
	"moe/internal/workload"
)

// tinyDataset is a shared small training run (4 NAS programs, short
// duration, both platforms) so the expensive generation happens once per
// test binary.
var (
	tinyOnce sync.Once
	tinyDS   *DataSet
	tinyErr  error
)

func tinyConfig() Config {
	var progs []*workload.Program
	for _, name := range []string{"bt", "ep", "cg", "is"} {
		p, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		progs = append(progs, p)
	}
	return Config{
		Programs:           progs,
		WorkloadsPerTarget: 3,
		Duration:           40,
		Seed:               21,
	}
}

func tinyDataset(t *testing.T) *DataSet {
	t.Helper()
	tinyOnce.Do(func() {
		tinyDS, tinyErr = Generate(tinyConfig())
	})
	if tinyErr != nil {
		t.Fatalf("tiny dataset generation failed: %v", tinyErr)
	}
	return tinyDS
}

func TestGenerateProducesLabelledSamples(t *testing.T) {
	ds := tinyDataset(t)
	if len(ds.Samples) < 200 {
		t.Fatalf("only %d samples", len(ds.Samples))
	}
	platforms := map[int]bool{}
	programs := map[string]bool{}
	for _, s := range ds.Samples {
		if s.BestThreads < 1 || s.BestThreads > 32 {
			t.Fatalf("label %v out of range", s.BestThreads)
		}
		if s.NextEnv.Processors < 1 {
			t.Fatalf("next env has no processors: %+v", s.NextEnv)
		}
		if len(s.Speedups) == 0 || s.Speedups[0] != 1 {
			t.Fatalf("speedup curve must be normalized to 1 thread: %v", s.Speedups[:min(3, len(s.Speedups))])
		}
		platforms[s.PlatformCores] = true
		programs[s.Program] = true
	}
	if !platforms[12] || !platforms[32] {
		t.Errorf("platforms covered: %v, want 12 and 32", platforms)
	}
	if len(programs) != 4 {
		t.Errorf("programs covered: %v", programs)
	}
}

func TestGenerateValidation(t *testing.T) {
	p, _ := workload.ByName("bt")
	if _, err := Generate(Config{Programs: []*workload.Program{p}}); err == nil {
		t.Error("single program should error")
	}
}

func TestClassifyScalability(t *testing.T) {
	ep, _ := workload.ByName("ep")
	sc, err := ClassifyScalability(ep, sim.Eval32())
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Scalable {
		t.Errorf("ep should be scalable on 32 cores (speedup %v)", sc.Speedup)
	}
	is, _ := workload.ByName("is")
	sc, err = ClassifyScalability(is, sim.Eval32())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scalable {
		t.Errorf("is should be non-scalable on 32 cores (speedup %v)", sc.Speedup)
	}
}

func TestBuildExperts4(t *testing.T) {
	ds := tinyDataset(t)
	set, err := BuildExperts4(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("%d experts", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Platform caps per the Fig 5 split: E1/E3 on the big machine, E2/E4
	// on the small one.
	if set[0].MaxThreads != 32 || set[1].MaxThreads != 12 || set[2].MaxThreads != 32 || set[3].MaxThreads != 12 {
		t.Errorf("platform caps: %d %d %d %d",
			set[0].MaxThreads, set[1].MaxThreads, set[2].MaxThreads, set[3].MaxThreads)
	}
	for _, e := range set {
		if e.Speedup == nil {
			t.Errorf("%s missing speedup model", e.Name)
		}
		if e.FeatStd[features.Processors] <= 0 {
			t.Errorf("%s missing feature statistics", e.Name)
		}
	}
}

func TestBuildExperts8(t *testing.T) {
	ds := tinyDataset(t)
	set, err := BuildExperts8(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 {
		t.Fatalf("%d experts", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExperts2AndMonolithic(t *testing.T) {
	ds := tinyDataset(t)
	set2, err := BuildExperts2(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(set2) != 2 {
		t.Fatalf("%d experts", len(set2))
	}
	mono, err := BuildMonolithic(ds)
	if err != nil {
		t.Fatal(err)
	}
	if mono.MaxThreads != 32 {
		t.Errorf("monolithic cap = %d", mono.MaxThreads)
	}
}

func TestExcludeProgram(t *testing.T) {
	ds := tinyDataset(t)
	sub := ds.ExcludeProgram("bt")
	if len(sub.Samples) >= len(ds.Samples) {
		t.Error("exclusion removed nothing")
	}
	for _, s := range sub.Samples {
		if s.Program == "bt" {
			t.Fatal("bt sample survived exclusion")
		}
	}
	// Unknown program: passthrough.
	if got := ds.ExcludeProgram("nope"); len(got.Samples) != len(ds.Samples) {
		t.Error("unknown exclusion should be a no-op")
	}
}

func TestBuildExperts4SurvivesLeaveOneOut(t *testing.T) {
	// Even when a slice empties (single-program class), the fallback
	// must produce four valid experts.
	ds := tinyDataset(t)
	for _, name := range []string{"bt", "ep", "cg", "is"} {
		set, err := BuildExperts4(ds.ExcludeProgram(name))
		if err != nil {
			t.Fatalf("without %s: %v", name, err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("without %s: %v", name, err)
		}
	}
}

func TestFitExpertErrorsOnEmpty(t *testing.T) {
	if _, err := FitExpert("x", &DataSet{}, 32, "nothing"); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := tinyDataset(t)
	for _, kind := range []PredictorKind{ThreadPredictor, EnvPredictor} {
		m, err := CrossValidate(ds, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.N == 0 || m.MAE < 0 {
			t.Errorf("%v metrics: %+v", kind, m)
		}
	}
	if _, err := CrossValidate(&DataSet{}, ThreadPredictor); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestCrossValidateThreadMasked(t *testing.T) {
	ds := tinyDataset(t)
	full, err := CrossValidateThreadMasked(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, features.Dim) // all features masked out: bias-only
	biasOnly, err := CrossValidateThreadMasked(ds, mask)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-validated quality on a tiny dataset can order either way;
	// what must hold is that both runs produced metrics over the same
	// fold structure.
	if full.N != biasOnly.N || full.N == 0 {
		t.Errorf("fold sizes differ: %d vs %d", full.N, biasOnly.N)
	}
	// In-sample, OLS with more features can never fit worse: verify with
	// a direct fit on the same samples.
	samples := ds.threadSamples()
	fullFit, err := regress.Fit(samples, regress.Options{Ridge: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	biasFit, err := regress.Fit(samples, regress.Options{Ridge: 1e-6, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	fullM, err := regress.Evaluate(fullFit, samples)
	if err != nil {
		t.Fatal(err)
	}
	biasM, err := regress.Evaluate(biasFit, samples)
	if err != nil {
		t.Fatal(err)
	}
	if fullM.RMSE > biasM.RMSE+1e-9 {
		t.Errorf("in-sample full RMSE %v exceeds bias-only RMSE %v", fullM.RMSE, biasM.RMSE)
	}
}

func TestFeatureImpacts(t *testing.T) {
	ds := tinyDataset(t)
	impacts, err := FeatureImpacts(ds, ThreadPredictor)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != features.Dim {
		t.Fatalf("%d impacts", len(impacts))
	}
	total := 0.0
	for _, im := range impacts {
		if im.Share < 0 {
			t.Errorf("negative share for %s", im.Name)
		}
		total += im.Share
	}
	if total <= 0 {
		t.Error("no feature has any impact — implausible")
	}
}

func TestTrainGating(t *testing.T) {
	ds := tinyDataset(t)
	set, err := BuildExperts4(ds)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := TrainGating(ds, set, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The gate must return valid indices for every training state. (On a
	// tiny dataset one expert can legitimately dominate; diversity of
	// routing is asserted in the experiments-level tests instead.)
	for _, s := range ds.Samples[:min(500, len(ds.Samples))] {
		if k := sel.Select(s.Features); k < 0 || k >= len(set) {
			t.Fatalf("gate returned invalid expert %d", k)
		}
	}
	if _, err := TrainGating(&DataSet{}, set, 1); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestNewMixturePolicy(t *testing.T) {
	ds := tinyDataset(t)
	set, err := BuildExperts4(ds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixturePolicy(ds, set)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mixture" {
		t.Errorf("name = %s", m.Name())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 20
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Features != b.Samples[i].Features || a.Samples[i].BestThreads != b.Samples[i].BestThreads {
			t.Fatal("same seed produced different samples")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
