package moe_test

import (
	"fmt"
	"math"
	"testing"

	"moe"
	"moe/internal/chaos"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
	"moe/internal/telemetry"
)

// The differential harness: every scenario stream is pushed through Decide
// one observation at a time and through DecideBatch at several batch sizes,
// and everything observable — the decision sequence, the runtime counters,
// the thread histogram, the mixture's full analysis snapshot — must be
// byte-identical. The batch fast path is only allowed to be faster, never
// different.

// batchSizes are the chunkings every scenario is replayed at.
var batchSizes = []int{1, 2, 7, 64}

// steadyObservation is the healthy steady state: clean features, constant
// availability, monotone clock — the stream the fast path compiles for.
func steadyObservation(i int) moe.Observation {
	var f moe.Features
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((i*7+j*3)%11)
	}
	f[features.Processors] = float64(ckptMaxThreads)
	return moe.Observation{
		Time:           0.25 * float64(i),
		Features:       f,
		Rate:           100 + 8*math.Sin(float64(i)/3),
		RegionStart:    i%4 == 0,
		AvailableProcs: ckptMaxThreads,
	}
}

// adversarialObservation interleaves every runtime-level repair into an
// otherwise steady stream: NaN/Inf features, out-of-bound magnitudes,
// negative and non-finite rates, backwards and non-finite time, dropped
// availability.
func adversarialObservation(i int) moe.Observation {
	o := steadyObservation(i)
	switch i % 11 {
	case 2:
		o.Features[features.CPULoad1] = math.NaN()
	case 3:
		o.Features[features.CachedMemory] = math.Inf(1)
	case 4:
		o.Features[features.PageFreeRate] = -2 * features.MaxMagnitude
	case 5:
		o.Rate = math.NaN()
	case 6:
		o.Rate = -50
	case 7:
		o.Time = 0.25*float64(i) - 3 // runs backwards
	case 8:
		o.Time = math.Inf(-1)
	case 9:
		o.AvailableProcs = 0
		o.Features[features.Processors] = 0 // full dropout ladder
	}
	return o
}

// recorderPolicy wraps a policy and records every decision it is asked to
// make as a replayable observation — used underneath a chaos injector to
// capture post-fault observation streams.
type recorderPolicy struct {
	inner moe.Policy
	obs   []moe.Observation
}

func (p *recorderPolicy) Name() string { return p.inner.Name() }

func (p *recorderPolicy) Decide(d sim.Decision) int {
	p.obs = append(p.obs, moe.Observation{
		Time:           d.Time,
		Features:       d.Features,
		Rate:           d.Rate,
		RegionStart:    d.RegionStart,
		AvailableProcs: d.AvailableProcs,
	})
	return p.inner.Decide(d)
}

// recordFaultedStream replays `steps` generated observations through a
// runtime whose policy chain is injector(recorder(mixture)) and returns the
// post-fault observations the policy actually saw — a deterministic
// corrupted stream to feed the differential pairs.
func recordFaultedStream(t testing.TB, steps int, seed uint64, faults []chaos.ScheduledFault, gen func(int) moe.Observation) []moe.Observation {
	t.Helper()
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorderPolicy{inner: m}
	inj, err := chaos.NewInjector(rec, seed, faults...)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(inj, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		rt.Decide(gen(i))
	}
	return rec.obs
}

// wildExpertSet pairs one sane expert with one whose environment model is
// wrong by orders of magnitude: the wild one quarantines as soon as it is
// scored, then cycles through cooldown, probation and re-quarantine for the
// rest of the stream — the full health state machine, continuously live.
func wildExpertSet() moe.ExpertSet {
	flat := func(val float64) *regress.Model {
		return &regress.Model{Weights: make([]float64, features.Dim), Bias: val}
	}
	mk := func(name string, threads, env float64) *moe.Expert {
		return &moe.Expert{
			Name:       name,
			Threads:    flat(threads),
			Env:        expert.NormEnvModel{Model: flat(env)},
			MaxThreads: ckptMaxThreads,
		}
	}
	return moe.ExpertSet{mk("sane", 4, 2), mk("wild", 2, 1e7)}
}

// batchScenario is one differential case: a policy constructor (fresh state
// per runtime — stateful policies must never be shared) and the observation
// stream to replay.
type batchScenario struct {
	build func(t testing.TB) moe.Policy
	obs   []moe.Observation
}

func canonicalMixture(t testing.TB) moe.Policy {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// batchScenarios enumerates the differential suite: the golden steady
// state, the checkpointing stream (availability steps), a chaos-corrupted
// stream covering every observation-path fault family, a synthetic hotplug
// storm, an adversarial runtime-repair stream, and a quarantine/probation
// churn stream on a wild expert pool.
func batchScenarios(t testing.TB) map[string]batchScenario {
	gen := func(n int, f func(int) moe.Observation) []moe.Observation {
		obs := make([]moe.Observation, n)
		for i := range obs {
			obs[i] = f(i)
		}
		return obs
	}
	hotplug := func(i int) moe.Observation {
		o := steadyObservation(i)
		p := 1 + (i*5)%ckptMaxThreads
		o.AvailableProcs = p
		o.Features[features.Processors] = float64(p)
		if i%13 == 0 {
			o.AvailableProcs = 0 // fall back to f5
		}
		return o
	}
	return map[string]batchScenario{
		"steady":      {canonicalMixture, gen(200, steadyObservation)},
		"checkpoint":  {canonicalMixture, gen(200, ckptObservation)},
		"adversarial": {canonicalMixture, gen(200, adversarialObservation)},
		"hotplug":     {canonicalMixture, gen(200, hotplug)},
		"chaos":       {canonicalMixture, recordFaultedStream(t, 160, 77, telemetryFaults(), ckptObservation)},
		"quarantine": {
			func(t testing.TB) moe.Policy {
				m, err := moe.NewMixture(wildExpertSet())
				if err != nil {
					t.Fatal(err)
				}
				return m
			},
			gen(200, steadyObservation),
		},
	}
}

// runSingle replays obs through Decide one at a time.
func runSingle(t testing.TB, p moe.Policy, obs []moe.Observation) ([]int, *moe.Runtime) {
	t.Helper()
	rt, err := moe.NewRuntime(p, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(obs))
	for i, o := range obs {
		out[i] = rt.Decide(o)
	}
	return out, rt
}

// runBatched replays obs through DecideBatch in chunks of size.
func runBatched(t testing.TB, p moe.Policy, obs []moe.Observation, size int) ([]int, *moe.Runtime) {
	t.Helper()
	rt, err := moe.NewRuntime(p, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for start := 0; start < len(obs); start += size {
		end := start + size
		if end > len(obs) {
			end = len(obs)
		}
		out = rt.DecideBatchInto(out, obs[start:end])
	}
	return out, rt
}

// histogramsEqual compares thread histograms bit-for-bit: the fast path
// must reproduce the exact division, not an approximation of it.
func histogramsEqual(a, b map[int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for n, av := range a {
		bv, ok := b[n]
		if !ok || math.Float64bits(av) != math.Float64bits(bv) {
			return false
		}
	}
	return true
}

// runtimeFingerprint renders everything a runtime exposes about its state
// (minus the batch dispatcher counters, which legitimately differ between
// the single and batched replay).
func runtimeFingerprint(rt *moe.Runtime) string {
	st, ok := rt.MixtureStatsSnapshot()
	return fmt.Sprintf("decisions=%d sanitized=%d ckpt=%v mixture(%v)=%+v",
		rt.Decisions(), rt.SanitizedValues(), rt.CheckpointErr(), ok, st)
}

// TestDecideBatchEquivalence pins DecideBatch to Decide across every
// scenario and batch size: identical decision streams, identical counters,
// bit-identical histograms and mixture statistics.
func TestDecideBatchEquivalence(t *testing.T) {
	for name, sc := range batchScenarios(t) {
		t.Run(name, func(t *testing.T) {
			want, ref := runSingle(t, sc.build(t), sc.obs)
			for _, size := range batchSizes {
				got, rt := runBatched(t, sc.build(t), sc.obs, size)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch=%d: decision %d diverged: %d vs %d", size, i, got[i], want[i])
					}
				}
				if g, w := runtimeFingerprint(rt), runtimeFingerprint(ref); g != w {
					t.Fatalf("batch=%d: runtime state diverged:\n got %s\nwant %s", size, g, w)
				}
				if !histogramsEqual(rt.ThreadHistogram(), ref.ThreadHistogram()) {
					t.Fatalf("batch=%d: thread histograms diverged:\n got %v\nwant %v",
						size, rt.ThreadHistogram(), ref.ThreadHistogram())
				}
				bs := rt.BatchStats()
				if bs.FastDecisions+bs.FullDecisions != len(sc.obs) {
					t.Fatalf("batch=%d: dispatcher counted %d+%d decisions, want %d",
						size, bs.FastDecisions, bs.FullDecisions, len(sc.obs))
				}
				if name == "steady" && bs.FastDecisions == 0 {
					t.Fatalf("batch=%d: steady stream never hit the fast path", size)
				}
			}
		})
	}
}

// TestDecideBatchStaysFast pins the dispatcher's precision on the healthy
// stream: after the cold first decision, every steady observation must be
// served by the fast path — demotions there would silently void the
// throughput win.
func TestDecideBatchStaysFast(t *testing.T) {
	obs := make([]moe.Observation, 192)
	for i := range obs {
		obs[i] = steadyObservation(i)
	}
	_, rt := runBatched(t, canonicalMixture(t), obs, 64)
	bs := rt.BatchStats()
	if bs.FullDecisions != 1 {
		t.Fatalf("steady stream demoted %d decisions (want only the cold first); stats %+v",
			bs.FullDecisions, bs)
	}
	if bs.Batches != 3 {
		t.Fatalf("batches = %d, want 3", bs.Batches)
	}
}

// TestDecideBatchEquivalenceInstrumented replays the chaos scenario with a
// registry sink on both runtimes and demands every per-decision telemetry
// family agree exactly. (With a sink attached every decision walks the full
// path, so this pins the batch loop, flush and publish around it — and that
// the moe_decide_batch_* families are strictly additive.)
func TestDecideBatchEquivalenceInstrumented(t *testing.T) {
	sc := batchScenarios(t)["chaos"]

	run := func(batched bool) (*telemetry.Registry, *moe.Runtime) {
		rt, err := moe.NewRuntime(sc.build(t), ckptMaxThreads)
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.SetTelemetry(telemetry.NewRegistrySink(reg))
		if batched {
			for start := 0; start < len(sc.obs); start += 7 {
				end := start + 7
				if end > len(sc.obs) {
					end = len(sc.obs)
				}
				rt.DecideBatch(sc.obs[start:end])
			}
		} else {
			for _, o := range sc.obs {
				rt.Decide(o)
			}
		}
		return reg, rt
	}
	regSingle, _ := run(false)
	regBatch, rt := run(true)

	counters := []struct {
		name   string
		labels []string
	}{
		{"moe_decisions_total", nil},
		{"moe_suspect_observations_total", nil},
		{"moe_rerouted_decisions_total", nil},
		{"moe_fallback_decisions_total", nil},
		{"moe_quarantines_total", nil},
		{"moe_repaired_values_total", []string{"stage", "runtime"}},
		{"moe_repaired_values_total", []string{"stage", "policy"}},
		{"moe_health_transitions_total", []string{"to", "ok"}},
		{"moe_health_transitions_total", []string{"to", "quarantined"}},
		{"moe_health_transitions_total", []string{"to", "probation"}},
	}
	for k := 0; k < 4; k++ {
		counters = append(counters, struct {
			name   string
			labels []string
		}{"moe_expert_selections_total", []string{"expert", fmt.Sprint(k)}})
	}
	for _, c := range counters {
		w := regSingle.Counter(c.name, "", c.labels...).Value()
		g := regBatch.Counter(c.name, "", c.labels...).Value()
		if g != w {
			t.Errorf("%s%v: batched %d vs single %d", c.name, c.labels, g, w)
		}
	}

	// The batch families are additive on top, and account for every
	// decision.
	nBatches := (len(sc.obs) + 6) / 7
	if got := regBatch.Counter("moe_decide_batches_total", "").Value(); got != int64(nBatches) {
		t.Errorf("moe_decide_batches_total = %d, want %d", got, nBatches)
	}
	fast := regBatch.Counter("moe_decide_batch_fast_decisions_total", "").Value()
	full := regBatch.Counter("moe_decide_batch_full_decisions_total", "").Value()
	if fast+full != int64(len(sc.obs)) {
		t.Errorf("batch path counters %d+%d don't cover %d decisions", fast, full, len(sc.obs))
	}
	bs := rt.BatchStats()
	if int64(bs.FastDecisions) != fast || int64(bs.FullDecisions) != full {
		t.Errorf("BatchStats %+v disagrees with registry (%d fast, %d full)", bs, fast, full)
	}
	if regBatch.Histogram("moe_decide_batch_size", "", nil).Count() != int64(nBatches) {
		t.Error("batch size histogram incomplete")
	}
}

// TestDecideBatchCheckpointEquivalence pins the fast path's write-ahead
// journaling: a batched, checkpointed run must journal exactly what a
// single-decision run would, so a crash-recovered runtime lands in the
// identical state and finishes the stream identically.
func TestDecideBatchCheckpointEquivalence(t *testing.T) {
	const total, every, cut = 200, 10, 120
	obs := make([]moe.Observation, total)
	for i := range obs {
		obs[i] = steadyObservation(i)
	}

	want, _ := runSingle(t, canonicalMixture(t), obs)

	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(store, every); err != nil {
		t.Fatal(err)
	}
	var got []int
	for start := 0; start < cut; start += 7 {
		end := start + 7
		if end > cut {
			end = cut
		}
		got = rt.DecideBatchInto(got, obs[start:end])
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("checkpointed batch decision %d diverged: %d vs %d", i, got[i], want[i])
		}
	}
	if rt.BatchStats().FastDecisions == 0 {
		t.Fatal("checkpointed batches never hit the fast path — journaling there untested")
	}
	if err := rt.CheckpointErr(); err != nil {
		t.Fatal(err)
	}

	// "Crash", recover, finish the stream one decision at a time.
	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Resume(store2); err != nil {
		t.Fatal(err)
	}
	if resumed.Decisions() != cut {
		t.Fatalf("recovered %d decisions, want %d", resumed.Decisions(), cut)
	}
	for i := cut; i < total; i++ {
		if n := resumed.Decide(obs[i]); n != want[i] {
			t.Fatalf("post-recovery decision %d diverged: %d vs %d", i, n, want[i])
		}
	}
}

// FuzzDecideBatchEquivalence fuzzes the differential property itself:
// arbitrary observation streams (clean, corrupt, regressive — whatever the
// generator derives from the seed) chunked at an arbitrary batch size must
// match the single-decision replay exactly.
func FuzzDecideBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(1))
	f.Add(uint64(77), uint8(2))
	f.Add(uint64(0xdeadbeef), uint8(7))
	f.Add(uint64(42), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, sizeByte uint8) {
		size := int(sizeByte%64) + 1
		rng := seed
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 17
		}
		obs := make([]moe.Observation, 96)
		clock := 0.0
		for i := range obs {
			o := steadyObservation(i)
			o.Time = clock
			if next()%4 == 0 {
				clock += float64(next()%100) / 50
			}
			switch next() % 13 {
			case 0:
				o.Features[int(next())%features.Dim] = math.NaN()
			case 1:
				o.Features[int(next())%features.Dim] = math.Inf(1)
			case 2:
				o.Features[int(next())%features.Dim] = -3 * features.MaxMagnitude
			case 3:
				o.Rate = -float64(next() % 1000)
			case 4:
				o.Time = clock - 5
			case 5:
				p := int(next() % 16)
				o.AvailableProcs = p
				o.Features[features.Processors] = float64(p)
			case 6:
				for j := features.EnvStart; j < features.Dim; j++ {
					o.Features[j] = 0 // dropout
				}
			}
			obs[i] = o
		}
		want, ref := runSingle(t, canonicalMixture(t), obs)
		got, rt := runBatched(t, canonicalMixture(t), obs, size)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: decision %d diverged: %d vs %d", size, i, got[i], want[i])
			}
		}
		if g, w := runtimeFingerprint(rt), runtimeFingerprint(ref); g != w {
			t.Fatalf("batch=%d: state diverged:\n got %s\nwant %s", size, g, w)
		}
	})
}
