package experiments

import (
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// LiveTraceSummary reproduces the Fig 1 observation: it synthesizes the
// 50-hour production log and reports its activity statistics (peak and mean
// thread population, capacity-loss window). The window around the 175,000th
// second — the one §3 zooms into — is summarized separately.
func LiveTraceSummary(seed uint64) (*Table, error) {
	cfg := trace.DefaultLiveConfig()
	lt, err := trace.GenerateLive(trace.NewRNG(seed), cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 1 — live-system trace statistics (50 h production log)",
		Columns: []string{"value"},
	}
	points := lt.Points()
	var sum float64
	peak := 0
	minProcs := cfg.MaxProcs
	for _, p := range points {
		sum += float64(p.Threads)
		if p.Threads > peak {
			peak = p.Threads
		}
		if p.Procs < minProcs {
			minProcs = p.Procs
		}
	}
	t.AddRow("samples", float64(len(points)))
	t.AddRow("mean threads", sum/float64(len(points)))
	t.AddRow("peak threads", float64(peak))
	t.AddRow("max processors", float64(cfg.MaxProcs))
	t.AddRow("min processors", float64(minProcs))

	window := lt.Window(175000-600, 175000+600)
	var wsum float64
	for _, p := range window {
		wsum += float64(p.Threads)
	}
	if len(window) > 0 {
		t.AddRow("window@175k mean threads", wsum/float64(len(window)))
	}
	return t, nil
}

// LiveStudy reproduces Fig 14a (§7.5): the live workload pattern — including
// the hardware failure that halves the processors for two hours — replayed
// scaled-down on the evaluation platform, summarized over all benchmarks.
func (l *Lab) LiveStudy(sc Scale) (*Table, error) {
	maxTime := DefaultMaxTime * 1.0
	// The §7.5 episode scaled down: full capacity, half capacity for the
	// middle stretch, recovery — proportionally compressed into the
	// scenario length.
	hw, err := trace.FailureHardware(l.Eval.Cores, maxTime*0.3, maxTime*0.4)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Fig 14a — live case study with hardware failure (speedup over default)",
		Columns: policyColumns(BaselinePolicies),
	}
	per := make(map[PolicyName][]float64)
	// The live workload: a mixed bag of co-runners whose thread demand
	// was scaled with capacity (§7.5) — the default policy does that
	// naturally (threads = available processors).
	liveWorkload := []string{"cg", "ft", "art"}
	np := len(BaselinePolicies)
	cells, err := grid(l, len(sc.Targets)*np, func(i int) (float64, error) {
		ti, name := i/np, BaselinePolicies[i%np]
		return l.liveSpeedup(sc.Targets[ti], liveWorkload, hw, name, sc, uint64(ti))
	})
	if err != nil {
		return nil, err
	}
	for i := range cells {
		per[BaselinePolicies[i%np]] = append(per[BaselinePolicies[i%np]], cells[i])
	}
	vals := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		vals[i] = stats.HMean(per[n])
	}
	t.AddRow("hmean", vals...)
	return t, nil
}

// liveSpeedup runs one live-study target under a fixed failure trace.
func (l *Lab) liveSpeedup(target string, wl []string, hw *trace.HardwareTrace, name PolicyName, sc Scale, salt uint64) (float64, error) {
	run := func(policyName PolicyName, seed uint64) (float64, error) {
		p, err := l.NewPolicy(policyName, target, seed)
		if err != nil {
			return 0, err
		}
		prog, err := workload.ByName(target)
		if err != nil {
			return 0, err
		}
		machine := l.Eval
		machine.Hardware = hw
		specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: p, Target: true}}
		for i, w := range wl {
			wp, err := workload.ByName(w)
			if err != nil {
				return 0, err
			}
			dp, err := l.NewPolicy(PolicyDefault, w, seed+uint64(i))
			if err != nil {
				return 0, err
			}
			specs = append(specs, sim.ProgramSpec{Program: wp.Clone(), Policy: dp, Loop: true})
		}
		res, err := sim.Run(sim.Scenario{
			Stepping:  l.Stepping,
			Machine:   machine,
			Programs:  specs,
			MaxTime:   DefaultMaxTime,
			RateNoise: DefaultRateNoise,
			Seed:      seed,
		})
		if err != nil {
			return 0, err
		}
		tr, err := res.Target()
		if err != nil {
			return 0, err
		}
		prog2, err := workload.ByName(target)
		if err != nil {
			return 0, err
		}
		return effectiveExecTime(tr, prog2.TotalWork(), DefaultMaxTime)
	}
	repeats := max(1, sc.Repeats)
	times, err := grid(l, repeats*2, func(i int) (float64, error) {
		seed := sc.Seed + salt*99991 + uint64(i/2)*1000003
		if i%2 == 0 {
			return run(PolicyDefault, seed)
		}
		return run(name, seed)
	})
	if err != nil {
		return 0, err
	}
	var base, pol float64
	for r := 0; r < repeats; r++ {
		base += times[r*2]
		pol += times[r*2+1]
	}
	return base / pol, nil
}
