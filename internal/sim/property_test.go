package sim

import (
	"math"
	"testing"
	"testing/quick"

	"moe/internal/workload"
)

// Property tests on the engine's physical invariants.

func randProgram(name string, seed uint8) *workload.Program {
	// Deterministic variety from the seed byte.
	s := float64(seed)
	p := &workload.Program{
		Name:  name,
		Suite: workload.NAS,
		Regions: []workload.Region{{
			Name:         "r",
			Work:         1 + math.Mod(s*1.37, 4),
			ParallelFrac: 0.5 + math.Mod(s*0.031, 0.49),
			MemIntensity: math.Mod(s*0.047, 0.95),
			SyncCost:     math.Mod(s*0.0013, 0.03),
			Grain:        4 + int(seed)%60,
			LoadStore:    10 + s,
			Instructions: 100,
			Branches:     5,
		}},
		Iterations:   2 + int(seed)%6,
		WorkingSetGB: math.Mod(s*0.17, 8),
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestEngineInvariantsProperty(t *testing.T) {
	f := func(seedA, seedB uint8, nA, nB uint8) bool {
		progA := randProgram("a", seedA)
		progB := randProgram("b", seedB)
		res, err := Run(Scenario{
			Machine: Eval32(),
			Programs: []ProgramSpec{
				{Program: progA, Policy: FixedThreads(1 + int(nA)%32), Target: true},
				{Program: progB, Policy: FixedThreads(1 + int(nB)%32), Loop: true},
			},
			MaxTime: 5000,
		})
		if err != nil {
			return false
		}
		tr, err := res.Target()
		if err != nil || !tr.Finished {
			return false
		}
		// Physical invariants: positive finite time, exact work books,
		// serial lower bound (cannot beat one unconditioned core per
		// work unit... i.e. exec ≥ total work / machine size).
		if tr.ExecTime <= 0 || math.IsNaN(tr.ExecTime) || math.IsInf(tr.ExecTime, 0) {
			return false
		}
		if math.Abs(tr.WorkDone-progA.TotalWork()) > 1e-6 {
			return false
		}
		if tr.ExecTime < progA.TotalWork()/float64(32)-1e-9 {
			return false // faster than the whole machine could possibly go
		}
		// The workload made progress and its books are non-negative.
		return res.Programs[1].WorkDone >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterminismProperty(t *testing.T) {
	f := func(seedA, seedB, nA uint8, noise bool) bool {
		run := func() float64 {
			rn := 0.0
			if noise {
				rn = 0.2
			}
			res, err := Run(Scenario{
				Machine: Eval32(),
				Programs: []ProgramSpec{
					{Program: randProgram("a", seedA), Policy: FixedThreads(1 + int(nA)%32), Target: true},
					{Program: randProgram("b", seedB), Policy: FixedThreads(8), Loop: true},
				},
				MaxTime:   5000,
				RateNoise: rn,
				Seed:      uint64(seedA)<<8 | uint64(seedB),
			})
			if err != nil {
				return math.NaN()
			}
			tr, _ := res.Target()
			return tr.ExecTime
		}
		a, b := run(), run()
		return a == b && !math.IsNaN(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMoreCoRunnersNeverSpeedTargetUp(t *testing.T) {
	// Adding a co-runner can only slow the target (or leave it equal).
	f := func(seedA, seedB uint8) bool {
		exec := func(withCoRunner bool) float64 {
			specs := []ProgramSpec{
				{Program: randProgram("a", seedA), Policy: FixedThreads(8), Target: true},
			}
			if withCoRunner {
				specs = append(specs, ProgramSpec{Program: randProgram("b", seedB), Policy: FixedThreads(16), Loop: true})
			}
			res, err := Run(Scenario{Machine: Eval32(), Programs: specs, MaxTime: 5000})
			if err != nil {
				return math.NaN()
			}
			tr, _ := res.Target()
			return tr.ExecTime
		}
		alone, shared := exec(false), exec(true)
		// Phase transitions inside a timestep shift completion by up to
		// one dt per region execution (the engine's spill
		// approximation), so the comparison carries that tolerance.
		tol := DefaultDT * float64(randProgram("a", seedA).RegionCount()+1)
		return !math.IsNaN(alone) && shared >= alone-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
