// Command moetrain trains the mixture's experts on the simulator and
// prints the Table-1-style coefficient matrix plus cross-validation
// quality.
//
// Usage:
//
//	moetrain                 # default training setup (§5.1/§5.2)
//	moetrain -seed 7 -k 8    # different seed; eight-expert pool
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"moe/internal/experiments"
	"moe/internal/expert"
	"moe/internal/sim"
	"moe/internal/training"
)

func main() {
	seed := flag.Uint64("seed", 42, "training seed")
	k := flag.Int("k", 4, "expert pool size (1, 2, 4 or 8)")
	runs := flag.Int("runs", 0, "training runs per target (0 = default)")
	out := flag.String("o", "", "write the trained experts to this JSON file")
	workers := flag.Int("workers", 0, "concurrent training simulations (0 = GOMAXPROCS, 1 = serial); the dataset is identical for every setting")
	stepping := flag.String("stepping", "event", "simulation engine for training runs: event (event-horizon) or fixed (dt-by-dt reference); datasets agree within 1e-9")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	mode, err := sim.ParseSteppingMode(*stepping)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
		os.Exit(2)
	}

	stopCPU := startCPUProfile(*cpuprofile)
	defer stopCPU()
	defer writeHeapProfile(*memprofile)

	start := time.Now()
	ds, err := training.Generate(training.Config{Seed: *seed, WorkloadsPerTarget: *runs, Workers: *workers, Stepping: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("generated %d training samples in %.1fs\n\n", len(ds.Samples), time.Since(start).Seconds())

	var set expert.Set
	switch *k {
	case 1:
		mono, err := training.BuildMonolithic(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
			os.Exit(1)
		}
		set = expert.Set{mono}
	case 2:
		s2, err := training.BuildExperts2(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
			os.Exit(1)
		}
		set = s2
	case 4:
		s4, err := training.BuildExperts4(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
			os.Exit(1)
		}
		set = s4
	case 8:
		s8, err := training.BuildExperts8(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
			os.Exit(1)
		}
		set = s8
	default:
		fmt.Fprintf(os.Stderr, "moetrain: unsupported pool size %d (want 1, 2, 4 or 8)\n", *k)
		os.Exit(2)
	}
	fmt.Println("experts:")
	for _, e := range set {
		fmt.Printf("  %s: %s\n", e.Name, e.TrainedOn)
	}
	fmt.Println()
	if *out != "" {
		if err := expert.SaveSet(set, *out); err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: saving %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("saved %d experts to %s\n\n", len(set), *out)
	}

	lab := experiments.NewLabFromData(ds)
	lab.Workers = *workers
	lab.Stepping = mode
	if *k == 4 {
		t, err := lab.CoefficientsTable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Println()
	}
	cv, err := lab.CrossValidation()
	if err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(cv.String())
}

// startCPUProfile begins CPU profiling when path is non-empty and returns
// the stop function (a no-op otherwise). Error exits skip the deferred
// stop, which only costs the profile itself.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: cpuprofile: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeHeapProfile snapshots the heap to path when non-empty, after a GC so
// the profile reflects live objects rather than garbage.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "moetrain: memprofile: %v\n", err)
	}
}
