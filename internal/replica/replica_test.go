package replica

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"moe/internal/checkpoint"
	"moe/internal/features"
)

func testObs(i int) checkpoint.Observation {
	var f features.Vector
	for j := range f {
		f[j] = 0.1*float64(j+1) + 0.01*float64((i*5+j)%7)
	}
	f[features.Processors] = 8
	return checkpoint.Observation{
		Time:           0.5 * float64(i),
		Features:       f,
		Rate:           120,
		RegionStart:    i%3 == 0,
		AvailableProcs: 8,
	}
}

// testState builds a minimal valid snapshot state at the given decision
// count (stateless policy: nothing to capture).
func testState(decisions int) *checkpoint.State {
	return &checkpoint.State{
		PolicyName: "test",
		MaxThreads: 8,
		Decisions:  decisions,
		LastN:      2,
		Clock:      float64(decisions),
		LastAvail:  8,
		Hist:       map[int]int{2: decisions},
		Policy:     checkpoint.PolicyState{Kind: checkpoint.PolicyStateless},
	}
}

func newPair(t *testing.T) (*Primary, *Standby, *httptest.Server) {
	t.Helper()
	sb, err := NewStandby(t.TempDir(), false, nil, t.Logf)
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	ts := httptest.NewServer(sb.Handler())
	t.Cleanup(ts.Close)
	return NewPrimary(ts.URL, nil, t.Logf), sb, ts
}

// drivePrimary opens a shipping store in dir, writes a snapshot and n
// observations flushing after every flushEvery appends, and returns the
// store directory contents' file names.
func drivePrimary(t *testing.T, p *Primary, tenant, dir string, n int) {
	t.Helper()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetShipper(p.Shipper(tenant))
	if err := store.WriteSnapshot(testState(0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := store.Append(testObs(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := p.Flush(tenant); err != nil {
			t.Fatalf("Flush after %d: %v", i, err)
		}
	}
	store.Close()
}

func recoveredDecisions(t *testing.T, dir string) int {
	t.Helper()
	s, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open %s: %v", dir, err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover %s: %v", dir, err)
	}
	return rec.Decisions()
}

func TestShipFlushApplyRoundTrip(t *testing.T) {
	p, sb, _ := newPair(t)
	dir := t.TempDir()
	drivePrimary(t, p, "alpha", dir, 7)

	if lag := p.Lag(); lag != 0 {
		t.Fatalf("lag %d after clean flushes, want 0", lag)
	}
	got := recoveredDecisions(t, filepath.Join(sb.Root(), "alpha"))
	if got != 7 {
		t.Fatalf("standby recovered %d decisions, want 7", got)
	}
}

func TestDroppedFlushResyncs(t *testing.T) {
	p, sb, _ := newPair(t)
	dir := t.TempDir()

	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetShipper(p.Shipper("alpha"))
	if err := store.WriteSnapshot(testState(0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := store.Append(testObs(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Eat the next flush entirely.
	p.SetFailpoint(func() bool { return true })
	if err := store.Append(testObs(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Flush("alpha"); err == nil {
		t.Fatalf("dropped flush reported success")
	}
	if p.Lag() == 0 {
		t.Fatalf("lag is 0 right after a dropped flush")
	}

	// Network heals: the next flush carries the gap and resyncs in full.
	p.SetFailpoint(nil)
	if err := store.Append(testObs(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("healing Flush: %v", err)
	}
	if lag := p.Lag(); lag != 0 {
		t.Fatalf("lag %d after healing flush, want 0", lag)
	}
	store.Close()

	if got := recoveredDecisions(t, filepath.Join(sb.Root(), "alpha")); got != 3 {
		t.Fatalf("standby recovered %d decisions, want 3", got)
	}
}

func TestStandbyRestartHealsViaResync(t *testing.T) {
	p, sb, ts := newPair(t)
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetShipper(p.Shipper("alpha"))
	if err := store.WriteSnapshot(testState(0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := store.Append(testObs(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Restart the standby process: same root, fresh appliers. Its in-memory
	// stream position is gone, so the next incremental flush gets a 409 and
	// the primary resyncs the folded lineage.
	ts.Close()
	sb2, err := NewStandby(sb.Root(), false, nil, t.Logf)
	if err != nil {
		t.Fatalf("restart NewStandby: %v", err)
	}
	ts2 := httptest.NewServer(sb2.Handler())
	defer ts2.Close()
	p.base = ts2.URL

	for i := 3; i < 5; i++ {
		if err := store.Append(testObs(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("Flush after standby restart: %v", err)
	}
	store.Close()
	if got := recoveredDecisions(t, filepath.Join(sb.Root(), "alpha")); got != 5 {
		t.Fatalf("standby recovered %d decisions, want 5", got)
	}
}

func TestPromotionFencesPrimary(t *testing.T) {
	p, sb, _ := newPair(t)
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	store.SetShipper(p.Shipper("alpha"))
	if err := store.WriteSnapshot(testState(0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	term, err := sb.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if term != 2 {
		t.Fatalf("promoted term %d, want 2 (primary shipped at 1)", term)
	}
	// Idempotent.
	if term2, err := sb.Promote(); err != nil || term2 != term {
		t.Fatalf("second Promote: term %d err %v", term2, err)
	}

	if err := store.Append(testObs(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Flush("alpha"); !errors.Is(err, ErrDeposed) {
		t.Fatalf("flush after promotion: err=%v, want ErrDeposed", err)
	}
	if !p.Deposed() {
		t.Fatalf("primary did not latch deposed")
	}
	// Every later flush short-circuits deposed without touching the wire.
	if err := p.Flush("alpha"); !errors.Is(err, ErrDeposed) {
		t.Fatalf("later flush: err=%v, want ErrDeposed", err)
	}
	store.Close()

	// The promoted term is durable across a standby restart.
	sb3, err := NewStandby(sb.Root(), false, nil, t.Logf)
	if err != nil {
		t.Fatalf("restart promoted standby: %v", err)
	}
	if got := sb3.Term(); got != term {
		t.Fatalf("restarted standby term %d, want %d", got, term)
	}
}

func TestStaleRunShipmentsDropped(t *testing.T) {
	p, sb, _ := newPair(t)
	dirA := t.TempDir()

	// First store generation for the tenant.
	s1, err := checkpoint.Open(dirA)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ship := p.Shipper("alpha")
	s1.SetShipper(ship)
	if err := s1.WriteSnapshot(testState(0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := s1.Append(testObs(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// The watchdog recycles the tenant: a fresh store claims the next run
	// over the same directory and announces itself with a snapshot.
	s2, err := checkpoint.Open(dirA)
	if err != nil {
		t.Fatalf("Open gen2: %v", err)
	}
	s2.SetShipper(ship)
	if err := s2.WriteSnapshot(testState(1)); err != nil {
		t.Fatalf("gen2 WriteSnapshot: %v", err)
	}
	if err := s2.Append(testObs(1)); err != nil {
		t.Fatalf("gen2 Append: %v", err)
	}
	// The abandoned generation wakes up and writes a late record: it must
	// be dropped, not spliced after gen2's artifacts.
	if err := s1.Append(testObs(9)); err != nil {
		t.Fatalf("stale Append: %v", err)
	}
	if err := p.Flush("alpha"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s1.Close()
	s2.Close()

	got := recoveredDecisions(t, filepath.Join(sb.Root(), "alpha"))
	if got != 2 {
		t.Fatalf("standby recovered %d decisions, want 2 (gen2 snapshot@1 + 1 record)", got)
	}
}

func TestStandbyStatusAndValidation(t *testing.T) {
	p, sb, ts := newPair(t)
	drivePrimary(t, p, "alpha", t.TempDir(), 2)

	resp, err := http.Get(ts.URL + statusPath)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if st.Promoted || st.Tenants["alpha"].Records != 2 {
		t.Fatalf("status %+v, want unpromoted with 2 alpha records", st)
	}

	// Bad tenant IDs and bad terms are rejected before touching disk.
	for _, url := range []string{
		ts.URL + shipPath + "?tenant=../etc",
		ts.URL + shipPath + "?tenant=ok",
	} {
		resp, err := http.Post(url, "application/octet-stream", nil)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	if _, err := os.Stat(filepath.Join(sb.Root(), "..", "etc")); err == nil {
		t.Fatalf("path-traversal tenant created a directory")
	}

	dirs, err := sb.TenantDirs()
	if err != nil {
		t.Fatalf("TenantDirs: %v", err)
	}
	if len(dirs) != 1 || dirs[0] != "alpha" {
		t.Fatalf("TenantDirs %v, want [alpha]", dirs)
	}
}
