package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moe"
	"moe/internal/experiments"
	"moe/internal/features"
	"moe/internal/serve"
)

// The serve study: the multi-tenant daemon under a mixed-fleet load — a
// hundred-plus healthy tenants plus injected chaos tenants (panics,
// stalls) — driven over real HTTP for a fixed window, then drained. The
// committed evidence (BENCH_PR7.json) reports sustained decisions/sec with
// the envelope's shed/deadline/breaker counts, and the isolation proof:
// every healthy tenant's full served trace replayed against a solo Runtime
// must match exactly, chaos or no chaos.

type serveOpts struct {
	Tenants     int           // healthy tenants
	ChaosPanic  int           // tenants that panic every serve.FaultPanicEvery decisions
	ChaosStall  int           // tenants that wedge at decision serve.FaultStallAt
	Workers     int           // concurrent client goroutines
	Batch       int           // observations per request
	Duration    time.Duration // load window
	Rate        float64       // admission rate limit (0 = unlimited)
	MaxInflight int
	DrainWindow time.Duration
}

func defaultServeOpts() serveOpts {
	return serveOpts{
		Tenants:     112,
		ChaosPanic:  4,
		ChaosStall:  2,
		Workers:     12,
		Batch:       16,
		Duration:    4 * time.Second,
		Rate:        0,
		MaxInflight: 8,
		DrainWindow: 10 * time.Second,
	}
}

type serveReport struct {
	Tenants        int     `json:"tenants"`
	HealthyTenants int     `json:"healthy_tenants"`
	ChaosTenants   int     `json:"chaos_tenants"`
	Workers        int     `json:"workers"`
	Batch          int     `json:"batch"`
	DurationSec    float64 `json:"duration_sec"`

	DecisionsServed int64   `json:"decisions_served"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	RequestsServed  int64   `json:"requests_served"`
	RequestsShed    int64   `json:"requests_shed"`

	// The envelope's verdicts, read back from the serve_* metric families.
	ShedByReason     map[string]int64 `json:"serve_shed_total"`
	DeadlineExceeded int64            `json:"serve_deadline_exceeded_total"`
	PanicsRecovered  int64            `json:"serve_panics_recovered_total"`
	BreakerTrips     int64            `json:"serve_breaker_trips_total"`
	WatchdogRecycles int64            `json:"serve_watchdog_recycles_total"`

	// Isolation proof: healthy tenants' served traces vs solo runtimes.
	GoldenTenantsChecked int `json:"golden_tenants_checked"`
	GoldenMismatches     int `json:"golden_mismatches"`

	DrainElapsedSec   float64 `json:"drain_elapsed_sec"`
	DrainWindowSec    float64 `json:"drain_window_sec"`
	DrainClean        bool    `json:"drain_clean"`
	DrainCheckpointed int     `json:"drain_checkpointed"`

	// Restart proof: sampled tenants resumed with their decision counters
	// intact after a cold restart on the drained directory.
	ResumeVerified int `json:"resume_verified_tenants"`

	Notes []string `json:"notes"`
}

// serveObservation mirrors the throughput study's steady stream, perturbed
// per tenant, expressed in wire form.
func serveObservation(seed, k int) map[string]any {
	f := make([]float64, features.Dim)
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((k*7+j*3+seed)%11)
	}
	f[features.Processors] = throughputMaxThreads
	return map[string]any{
		"time":            0.25 * float64(k),
		"features":        f,
		"region_start":    k%4 == 0,
		"rate":            100 + float64(seed%13),
		"available_procs": throughputMaxThreads,
	}
}

func tenantSeed(id string) int {
	seed := 0
	for _, c := range id {
		seed = seed*31 + int(c)
	}
	if seed < 0 {
		seed = -seed
	}
	return seed
}

// soloServeThreads replays a tenant's acked stream on a lone runtime.
func soloServeThreads(id string, n int) ([]int, error) {
	p, err := serve.DefaultPolicyBuild(id)
	if err != nil {
		return nil, err
	}
	rt, err := moe.NewRuntime(p, throughputMaxThreads)
	if err != nil {
		return nil, err
	}
	seed := tenantSeed(id)
	obs := make([]moe.Observation, n)
	for k := range obs {
		var f moe.Features
		for j := range f {
			f[j] = 0.15*float64(j+1) + 0.02*float64((k*7+j*3+seed)%11)
		}
		f[features.Processors] = throughputMaxThreads
		obs[k] = moe.Observation{
			Time:           0.25 * float64(k),
			Features:       f,
			RegionStart:    k%4 == 0,
			Rate:           100 + float64(seed%13),
			AvailableProcs: throughputMaxThreads,
		}
	}
	return rt.DecideBatch(obs), nil
}

type serveClient struct {
	base   string
	client *http.Client
}

type serveWireResp struct {
	Threads   []int  `json:"threads"`
	Decisions int64  `json:"decisions"`
	Code      string `json:"code"`
}

// post sends one decide batch; it returns the HTTP status and the decoded
// body (response or error shape share the struct).
func (c *serveClient) post(tenant string, seed, from, n, deadlineMs int) (int, *serveWireResp, error) {
	obs := make([]map[string]any, n)
	for i := range obs {
		obs[i] = serveObservation(seed, from+i)
	}
	body, err := json.Marshal(map[string]any{"tenant": tenant, "observations": obs})
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(deadlineMs))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out serveWireResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &out, nil
}

// runServe is the whole study: load, drain, golden check, restart check.
func runServe(opts serveOpts) (*serveReport, error) {
	root, err := os.MkdirTemp("", "moed-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	cfg := serve.Config{
		MaxThreads:       throughputMaxThreads,
		CheckpointRoot:   root,
		CheckpointEvery:  128,
		MaxInflight:      opts.MaxInflight,
		Rate:             opts.Rate,
		WedgeTimeout:     400 * time.Millisecond,
		WatchdogInterval: 50 * time.Millisecond,
		BreakerBackoff:   200 * time.Millisecond,
		DrainWindow:      opts.DrainWindow,
		PolicyBuild:      serve.FaultInjectionBuild(serve.DefaultPolicyBuild),
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	healthy := make([]string, opts.Tenants)
	for i := range healthy {
		healthy[i] = fmt.Sprintf("acct-%03d", i)
	}
	var chaos []string
	for i := 0; i < opts.ChaosPanic; i++ {
		chaos = append(chaos, fmt.Sprintf("%s-%d", serve.ChaosPanicPrefix, i))
	}
	for i := 0; i < opts.ChaosStall; i++ {
		chaos = append(chaos, fmt.Sprintf("%s-%d", serve.ChaosStallPrefix, i))
	}
	all := append(append([]string{}, healthy...), chaos...)

	// Load phase: workers own disjoint tenant subsets and serve them
	// round-robin, so each tenant's stream stays strictly sequential. A
	// shed batch is retried next round — the acked prefix is exactly what
	// the golden replay gets.
	acked := make([]atomic.Int64, len(all)) // observations acknowledged per tenant
	var served, shedOrFailed atomic.Int64
	stopAt := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := &serveClient{base: base, client: &http.Client{Timeout: 5 * time.Second}}
			for time.Now().Before(stopAt) {
				for ti := w; ti < len(all); ti += opts.Workers {
					id := all[ti]
					from := int(acked[ti].Load())
					deadline := 2000
					if ti >= len(healthy) {
						deadline = 250 // chaos tenants: fail fast
					}
					status, _, err := cl.post(id, tenantSeed(id), from, opts.Batch, deadline)
					if err == nil && status == http.StatusOK {
						acked[ti].Add(int64(opts.Batch))
						served.Add(1)
					} else {
						shedOrFailed.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	loadElapsed := opts.Duration.Seconds()

	// Drain phase.
	drainStart := time.Now()
	drep, err := srv.Drain(opts.DrainWindow)
	if err != nil {
		return nil, err
	}
	_ = drainStart

	rep := &serveReport{
		Tenants:           len(all),
		HealthyTenants:    len(healthy),
		ChaosTenants:      len(chaos),
		Workers:           opts.Workers,
		Batch:             opts.Batch,
		DurationSec:       loadElapsed,
		RequestsServed:    served.Load(),
		RequestsShed:      shedOrFailed.Load(),
		ShedByReason:      map[string]int64{},
		DrainElapsedSec:   drep.Elapsed.Seconds(),
		DrainWindowSec:    opts.DrainWindow.Seconds(),
		DrainClean:        drep.Clean(),
		DrainCheckpointed: drep.Checkpointed,
	}
	collectServeMetrics(srv, rep)
	rep.DecisionsPerSec = float64(rep.DecisionsServed) / loadElapsed

	// Golden phase: every healthy tenant's acked trace must replay
	// identically on a solo runtime. The trace is read back from the
	// drained checkpoint lineage via a cold restart — which doubles as the
	// resume proof.
	srv2, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	defer srv2.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv2 := &http.Server{Handler: srv2.Handler()}
	go httpSrv2.Serve(ln2)
	defer httpSrv2.Close()
	cl := &serveClient{base: "http://" + ln2.Addr().String(), client: &http.Client{Timeout: 10 * time.Second}}
	for ti, id := range healthy {
		n := int(acked[ti].Load())
		if n == 0 {
			continue
		}
		// One more batch against the restarted daemon: its returned
		// decision counter proves the tenant resumed the full prefix, and
		// its threads extend the golden comparison across the restart.
		status, resp, err := cl.post(id, tenantSeed(id), n, opts.Batch, 10000)
		if err != nil || status != http.StatusOK {
			rep.Notes = append(rep.Notes, fmt.Sprintf("tenant %s: post-restart serve failed (status %d, err %v)", id, status, err))
			rep.GoldenMismatches++
			continue
		}
		if resp.Decisions != int64(n+opts.Batch) {
			rep.Notes = append(rep.Notes, fmt.Sprintf("tenant %s: resumed decisions=%d, want %d", id, resp.Decisions, n+opts.Batch))
			rep.GoldenMismatches++
			continue
		}
		rep.ResumeVerified++
		want, err := soloServeThreads(id, n+opts.Batch)
		if err != nil {
			return nil, err
		}
		tail := want[n:]
		match := len(resp.Threads) == len(tail)
		for i := 0; match && i < len(tail); i++ {
			match = resp.Threads[i] == tail[i]
		}
		rep.GoldenTenantsChecked++
		if !match {
			rep.GoldenMismatches++
			rep.Notes = append(rep.Notes, fmt.Sprintf("tenant %s: post-restart threads diverge from solo replay", id))
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("isolation: %d healthy tenants golden-checked across drain+restart against solo runtimes, %d mismatches",
			rep.GoldenTenantsChecked, rep.GoldenMismatches),
		fmt.Sprintf("chaos: %d panic + %d stall tenants absorbed by the envelope (panics=%d, trips=%d, recycles=%d, deadline=%d)",
			opts.ChaosPanic, opts.ChaosStall, rep.PanicsRecovered, rep.BreakerTrips, rep.WatchdogRecycles, rep.DeadlineExceeded))
	return rep, nil
}

// collectServeMetrics reads the envelope counters back out of the metric
// registry's JSON exposition — the same numbers an operator would scrape.
// Keys are "name" or "name{labels}".
func collectServeMetrics(srv *serve.Server, rep *serveReport) {
	var buf bytes.Buffer
	if err := srv.Registry().WriteJSON(&buf); err != nil {
		rep.Notes = append(rep.Notes, "metrics scrape failed: "+err.Error())
		return
	}
	var doc map[string]struct {
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		rep.Notes = append(rep.Notes, "metrics decode failed: "+err.Error())
		return
	}
	for key, m := range doc {
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
		}
		v := int64(m.Value)
		switch name {
		case "serve_decisions_total":
			rep.DecisionsServed = v
		case "serve_shed_total":
			reason := strings.TrimSuffix(strings.TrimPrefix(labels, `{reason="`), `"}`)
			rep.ShedByReason[reason] = v
		case "serve_deadline_exceeded_total":
			rep.DeadlineExceeded = v
		case "serve_panics_recovered_total":
			rep.PanicsRecovered = v
		case "serve_breaker_trips_total":
			rep.BreakerTrips = v
		case "serve_watchdog_recycles_total":
			rep.WatchdogRecycles = v
		}
	}
}

func serveTable(rep *serveReport) *experiments.Table {
	t := &experiments.Table{
		Title:   "Multi-tenant daemon under chaos load — sustained service with fault isolation",
		Columns: []string{"value"},
		Notes:   rep.Notes,
	}
	t.AddRow("tenants (healthy+chaos)", float64(rep.Tenants))
	t.AddRow("decisions/sec sustained", rep.DecisionsPerSec)
	t.AddRow("decisions served", float64(rep.DecisionsServed))
	t.AddRow("requests shed/refused", float64(rep.RequestsShed))
	t.AddRow("deadline exceeded", float64(rep.DeadlineExceeded))
	t.AddRow("panics recovered", float64(rep.PanicsRecovered))
	t.AddRow("breaker trips", float64(rep.BreakerTrips))
	t.AddRow("watchdog recycles", float64(rep.WatchdogRecycles))
	t.AddRow("golden tenants checked", float64(rep.GoldenTenantsChecked))
	t.AddRow("golden mismatches", float64(rep.GoldenMismatches))
	t.AddRow("drain seconds", rep.DrainElapsedSec)
	return t
}

// writeServeJSON runs the study and writes the committed artifact
// (BENCH_PR7.json). Golden mismatches are a hard failure: the artifact
// must never certify a daemon that leaks faults across tenants.
func writeServeJSON(path string) error {
	rep, err := runServe(defaultServeOpts())
	if err != nil {
		return err
	}
	if rep.GoldenMismatches > 0 {
		return fmt.Errorf("isolation violated: %d golden mismatches", rep.GoldenMismatches)
	}
	if !rep.DrainClean {
		return fmt.Errorf("drain not clean within %.0fs window", rep.DrainWindowSec)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: serve %d tenants, %.0f decisions/s, shed=%d deadline=%d panics=%d recycles=%d, drain %.2fs clean=%v, golden %d/0 mismatches, wrote %s\n",
		rep.Tenants, rep.DecisionsPerSec, rep.RequestsShed, rep.DeadlineExceeded,
		rep.PanicsRecovered, rep.WatchdogRecycles, rep.DrainElapsedSec, rep.DrainClean,
		rep.GoldenTenantsChecked, path)
	return nil
}
