package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"moe"
)

// TestPanicQuarantineAndProbation walks one tenant through the whole
// breaker ladder: fault → 500 + quarantine → 503 with Retry-After while
// cooling off → probation service → closed again.
func TestPanicQuarantineAndProbation(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		BreakerBackoff:    100 * time.Millisecond,
		ProbationRequests: 2,
		PolicyBuild: func(id string) (moe.Policy, error) {
			p, err := DefaultPolicyBuild(id)
			if err != nil {
				return nil, err
			}
			return PanicEvery(p, 50), nil
		},
	})
	id := "faulty"
	const batch = 10
	// Decisions 1..40 are clean; the batch holding decision 50 faults.
	for r := 0; r < 4; r++ {
		mustDecide(t, ts.URL, id, toWire(tenantStream(id, r*batch, batch)))
	}
	status, _, eresp, _ := postDecide(t, ts.URL, id, toWire(tenantStream(id, 40, batch)), 0)
	if status != http.StatusInternalServerError || eresp.Code != "tenant-fault" {
		t.Fatalf("faulting batch: status %d code %q, want 500 tenant-fault", status, eresp.Code)
	}
	if v := srv.metrics.panics.Value(); v != 1 {
		t.Fatalf("serve_panics_recovered_total = %d, want 1", v)
	}
	// Quarantined: shed with a retry hint, no decision attempted.
	status, _, eresp, hdr := postDecide(t, ts.URL, id, toWire(tenantStream(id, 40, batch)), 0)
	if status != http.StatusServiceUnavailable || eresp.Code != "quarantined" {
		t.Fatalf("quarantined request: status %d code %q, want 503 quarantined", status, eresp.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quarantine shed without Retry-After")
	}
	// After the backoff: probation serves on a fresh generation (ephemeral
	// tenant, so its decision counter restarts).
	time.Sleep(150 * time.Millisecond)
	resp := mustDecide(t, ts.URL, id, toWire(tenantStream(id, 40, batch)))
	if resp.Decisions != batch {
		t.Fatalf("probation generation decisions = %d, want %d (fresh runtime)", resp.Decisions, batch)
	}
	mustDecide(t, ts.URL, id, toWire(tenantStream(id, 50, batch)))
	srv.tn.mu.RLock()
	tn := srv.tn.m[id]
	srv.tn.mu.RUnlock()
	tn.mu.Lock()
	state, trips := tn.brk.state, tn.brk.trips
	tn.mu.Unlock()
	if state != breakerClosed {
		t.Fatalf("breaker %v after clean probation, want closed", state)
	}
	if trips != 1 {
		t.Fatalf("breaker trips = %d, want 1", trips)
	}
}

// TestWatchdogRecyclesWedgedTenant wedges a tenant mid-decision and
// expects: the request 504s at its deadline, the watchdog abandons the
// generation, and the next request is served by a fresh one — while a
// bystander tenant is served throughout.
func TestWatchdogRecyclesWedgedTenant(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		WedgeTimeout:     100 * time.Millisecond,
		WatchdogInterval: 10 * time.Millisecond,
		PolicyBuild: func(id string) (moe.Policy, error) {
			p, err := DefaultPolicyBuild(id)
			if err != nil {
				return nil, err
			}
			if id == "wedger" {
				return StallAt(p, 5, nil), nil
			}
			return p, nil
		},
	})
	mustDecide(t, ts.URL, "wedger", toWire(tenantStream("wedger", 0, 3)))
	// This batch hits the stalled 5th decision and must miss its deadline.
	status, _, eresp, _ := postDecide(t, ts.URL, "wedger", toWire(tenantStream("wedger", 3, 3)), 150)
	if status != http.StatusGatewayTimeout || eresp.Code != "deadline-exceeded" {
		t.Fatalf("wedged batch: status %d code %q, want 504 deadline-exceeded", status, eresp.Code)
	}
	// The bystander is untouched while the wedger is stuck.
	mustDecide(t, ts.URL, "bystander", toWire(tenantStream("bystander", 0, 8)))
	// Give the watchdog a sweep past the wedge budget, then serve again.
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.recycles.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.metrics.recycles.Value() == 0 {
		t.Fatal("watchdog never recycled the wedged tenant")
	}
	resp := mustDecide(t, ts.URL, "wedger", toWire(tenantStream("wedger", 0, 3)))
	if len(resp.Threads) != 3 {
		t.Fatalf("recycled tenant served %d threads, want 3", len(resp.Threads))
	}
	if v := srv.metrics.deadlineExceeded.Value(); v < 1 {
		t.Fatal("deadline miss not accounted")
	}
}

// TestDegradedStoreServesJournalLess blocks a tenant's checkpoint
// directory with a regular file: the typed checkpoint.DiskError must map
// to journal-less serving — visible in /v1/tenants and the per-tenant
// degraded gauge — never to a refusal, and the drain must report the
// tenant as journal-only without calling it an error.
func TestDegradedStoreServesJournalLess(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "blocked"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{CheckpointRoot: root})
	// The blocked tenant serves anyway...
	resp := mustDecide(t, ts.URL, "blocked", toWire(tenantStream("blocked", 0, 8)))
	want := soloThreads(t, tenantStream("blocked", 0, 8))
	if len(resp.Threads) != len(want) {
		t.Fatalf("degraded tenant served %d threads, want %d", len(resp.Threads), len(want))
	}
	// ...and a healthy sibling still gets real persistence.
	mustDecide(t, ts.URL, "fine", toWire(tenantStream("fine", 0, 8)))
	if _, err := os.Stat(filepath.Join(root, "fine")); err != nil {
		t.Fatalf("healthy sibling got no checkpoint directory: %v", err)
	}

	// The degradation is visible, not silent.
	var buf bytes.Buffer
	if err := srv.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `serve_tenant_checkpoint_degraded{tenant="blocked"} 1`) {
		t.Error("degraded gauge for the blocked tenant not exposed")
	}
	if !strings.Contains(text, `serve_tenant_checkpoint_degraded{tenant="fine"} 0`) {
		t.Error("healthy tenant's degraded gauge not exposed as 0")
	}
	req, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer req.Body.Close()
	var listing bytes.Buffer
	listing.ReadFrom(req.Body)
	if !strings.Contains(listing.String(), "checkpoint:") {
		t.Errorf("/v1/tenants does not surface the degraded reason: %s", listing.String())
	}

	rep, err := srv.Drain(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("drain around a degraded tenant must still be clean: %+v", rep)
	}
	if len(rep.JournalOnly) != 1 || rep.JournalOnly[0] != "blocked" {
		t.Fatalf("JournalOnly = %v, want [blocked]", rep.JournalOnly)
	}
	if rep.Checkpointed != 1 {
		t.Fatalf("Checkpointed = %d, want 1 (the healthy sibling)", rep.Checkpointed)
	}
}
