package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("got %q", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if IsTemp(e.Name()) {
			t.Fatalf("temp file %s left after successful write", e.Name())
		}
	}
}

// TestCrashAtEveryStage aborts the protocol at each stage and asserts the
// destination file is always either the old or the new complete contents.
func TestCrashAtEveryStage(t *testing.T) {
	for _, stage := range Stages() {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.bin")
			if err := WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			crash := fmt.Errorf("injected crash")
			target := stage
			err := WriteFileHooked(path, []byte("new"), 0o644, func(s Stage) error {
				if s == target {
					return crash
				}
				return nil
			})
			// Crashes before the rename leave the old contents; at or after
			// the rename the new contents are already in place and the
			// writer reports success-or-crash — either way the file must be
			// one of the two complete payloads.
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("destination unreadable after crash at %s: %v", stage, rerr)
			}
			switch string(got) {
			case "old":
				if err == nil {
					t.Fatalf("crash at %s reported success but old contents remain", stage)
				}
			case "new":
				// fine: crash after the data was already durable enough
			default:
				t.Fatalf("torn contents %q after crash at %s", got, stage)
			}
			if err := RemoveTemps(dir); err != nil {
				t.Fatal(err)
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				t.Fatalf("unexpected residue after cleanup: %v", entries)
			}
		})
	}
}

func TestRemoveTempsMissingDir(t *testing.T) {
	if err := RemoveTemps(filepath.Join(t.TempDir(), "nope")); err != nil {
		t.Fatal(err)
	}
}
