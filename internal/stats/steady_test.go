package stats

import (
	"math"
	"testing"
)

// splitmix64 gives the test a tiny deterministic RNG without importing the
// trace package (stats sits below it in the dependency order).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// TestUpdateSteadyMatchesIterated is the closed-form property test: over
// random (τ, Δt, x) sequences, one UpdateSteady(x, k·Δt) call must agree
// with k iterated Update(x, Δt) calls within 1e-12 relative — the identity
// (1−α)^k = exp(−k·Δt/τ) that the event-horizon engine leans on.
func TestUpdateSteadyMatchesIterated(t *testing.T) {
	rng := splitmix64(0xfeed)
	for trial := 0; trial < 500; trial++ {
		tau := 0.5 + 600*rng.float()
		dt := 0.01 + 0.5*rng.float()
		iter := NewEMA(tau)
		steady := NewEMA(tau)
		// A run of constant-input segments, like the quiet stretches the
		// event engine leaps over. The tolerance is 1e-12 relative to the
		// signal magnitude: when the average crosses zero its own value is
		// no longer a meaningful scale for rounding noise inherited from
		// O(|x|) intermediates.
		sigScale := 1.0
		for seg := 0; seg < 20; seg++ {
			x := -50 + 100*rng.float()
			if math.Abs(x) > sigScale {
				sigScale = math.Abs(x)
			}
			k := 1 + int(rng.next()%400)
			for i := 0; i < k; i++ {
				iter.Update(x, dt)
			}
			steady.UpdateSteady(x, float64(k)*dt)

			a, b := iter.Value(), steady.Value()
			if math.Abs(a-b) > 1e-12*sigScale {
				t.Fatalf("trial %d seg %d (τ=%.3g Δt=%.3g x=%.3g k=%d): iterated=%.17g steady=%.17g",
					trial, seg, tau, dt, x, k, a, b)
			}
		}
	}
}

// TestUpdateSteadyEdgeCases pins the boundary behaviour shared with Update:
// the first call seeds the value, and non-positive elapsed time or time
// constant leaves it untouched.
func TestUpdateSteadyEdgeCases(t *testing.T) {
	e := NewEMA(10)
	if got := e.UpdateSteady(3.5, 42); got != 3.5 {
		t.Fatalf("first UpdateSteady should seed with x, got %g", got)
	}
	if got := e.UpdateSteady(100, 0); got != 3.5 {
		t.Fatalf("elapsed=0 must be a no-op, got %g", got)
	}
	if got := e.UpdateSteady(100, -1); got != 3.5 {
		t.Fatalf("negative elapsed must be a no-op, got %g", got)
	}
	froz := &EMA{TimeConstant: 0}
	froz.UpdateSteady(1, 1)
	if got := froz.UpdateSteady(9, 5); got != 1 {
		t.Fatalf("zero time constant must freeze the value, got %g", got)
	}

	// A long steady stretch must converge to the input, as the iterated
	// form does.
	e2 := NewEMA(2)
	e2.Update(0, 1)
	e2.UpdateSteady(7, 1e6)
	if math.Abs(e2.Value()-7) > 1e-9 {
		t.Fatalf("steady update should converge to input, got %g", e2.Value())
	}
}
