package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"moe"
	"moe/moeclient"
)

// dialStream opens a wire session against the test server's HTTP surface.
func dialStream(t *testing.T, url string) *moeclient.Client {
	t.Helper()
	c, err := moeclient.DialHTTP(url, 2*time.Second)
	if err != nil {
		t.Fatalf("DialHTTP: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// pipeline sends every frame back to back, flushes once, then collects
// every response, keyed by seq — the shape that makes the server's
// per-tenant coalescer actually coalesce.
func pipeline(t *testing.T, c *moeclient.Client, frames map[uint64][]moe.Observation, tenantOf func(uint64) string) map[uint64]*moeclient.Response {
	t.Helper()
	seqs := make([]uint64, 0, len(frames))
	for seq := range frames {
		seqs = append(seqs, seq)
	}
	// Deterministic send order: ascending seq interleaves tenants the same
	// way every run (map iteration would not).
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if seqs[j] < seqs[i] {
				seqs[i], seqs[j] = seqs[j], seqs[i]
			}
		}
	}
	for _, seq := range seqs {
		if err := c.Send(seq, 5000, tenantOf(seq), "", frames[seq]); err != nil {
			t.Fatalf("send seq %d: %v", seq, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got := make(map[uint64]*moeclient.Response, len(frames))
	for range frames {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("recv after %d responses: %v", len(got), err)
		}
		if _, dup := got[resp.Seq]; dup {
			t.Fatalf("seq %d answered twice", resp.Seq)
		}
		got[resp.Seq] = resp
	}
	return got
}

// TestStreamEquivalence is the transport's golden proof: decisions served
// over the wire protocol — pipelined, coalesced, multi-tenant, with chaos
// tenants faulting alongside — are byte-identical to a solo Runtime fed
// the same per-tenant stream, and a mid-stream drain hands off to a
// restarted server that resumes the stream exactly.
func TestStreamEquivalence(t *testing.T) {
	root := t.TempDir()
	cfg := Config{
		CheckpointRoot:  root,
		MaxInflight:     1024,
		PolicyBuild:     FaultInjectionBuild(DefaultPolicyBuild),
		DefaultDeadline: 5 * time.Second,
	}
	srv, ts := newTestServer(t, cfg)

	// Phase 1: four healthy tenants, 25 frames x 8 observations each, all
	// pipelined down one session so concurrent same-tenant frames coalesce.
	tenantsIDs := []string{"wire-a", "wire-b", "wire-c", "wire-d"}
	const perFrame, nFrames = 8, 25
	frames := make(map[uint64][]moe.Observation)
	tenantOf := func(seq uint64) string { return tenantsIDs[seq%uint64(len(tenantsIDs))] }
	for ti := range tenantsIDs {
		stream := tenantStream(tenantsIDs[ti], 0, perFrame*nFrames)
		for f := 0; f < nFrames; f++ {
			seq := uint64(f*len(tenantsIDs) + ti)
			frames[seq] = stream[f*perFrame : (f+1)*perFrame]
		}
	}
	c := dialStream(t, ts.URL)
	got := pipeline(t, c, frames, tenantOf)
	for ti, id := range tenantsIDs {
		want := soloThreads(t, tenantStream(id, 0, perFrame*nFrames))
		var threads []int
		var lastDecisions int64
		for f := 0; f < nFrames; f++ {
			resp := got[uint64(f*len(tenantsIDs)+ti)]
			if resp.Err != nil {
				t.Fatalf("tenant %s frame %d refused: %v", id, f, resp.Err)
			}
			if resp.Deduped {
				t.Fatalf("tenant %s frame %d spuriously deduped", id, f)
			}
			if resp.Decisions <= lastDecisions {
				t.Fatalf("tenant %s frame %d decisions %d not increasing past %d", id, f, resp.Decisions, lastDecisions)
			}
			lastDecisions = resp.Decisions
			threads = append(threads, resp.Threads...)
		}
		if lastDecisions != int64(perFrame*nFrames) {
			t.Fatalf("tenant %s final decisions %d, want %d", id, lastDecisions, perFrame*nFrames)
		}
		if len(threads) != len(want) {
			t.Fatalf("tenant %s: %d threads, want %d", id, len(threads), len(want))
		}
		for i := range want {
			if threads[i] != want[i] {
				t.Fatalf("tenant %s decision %d: wire %d, solo %d", id, i, threads[i], want[i])
			}
		}
	}

	// Phase 2: chaos alongside. The panic tenant faults at decision 50 —
	// its group fails typed, later frames are quarantined — while a healthy
	// tenant on the same session stays byte-identical.
	chaosFrames := make(map[uint64][]moe.Observation)
	chaosStream := tenantStream(ChaosPanicPrefix+"-s", 0, 60)
	for f := 0; f < 6; f++ {
		chaosFrames[uint64(1000+f)] = chaosStream[f*10 : (f+1)*10]
	}
	chaosGot := pipeline(t, c, chaosFrames, func(uint64) string { return ChaosPanicPrefix + "-s" })
	var faulted int
	for _, resp := range chaosGot {
		if resp.Err != nil {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("panic tenant served 60 decisions without a single fault")
	}
	after := mustDecide(t, ts.URL, "wire-a", toWire(tenantStream("wire-a", perFrame*nFrames, 8)))
	wantAfter := soloThreads(t, tenantStream("wire-a", 0, perFrame*nFrames+8))[perFrame*nFrames:]
	for i := range wantAfter {
		if after.Threads[i] != wantAfter[i] {
			t.Fatalf("healthy tenant diverged after chaos: decision %d got %d want %d", i, after.Threads[i], wantAfter[i])
		}
	}

	// Phase 3: drain mid-session (the session is open with more to send —
	// the SIGTERM shape). The drain must be clean, the session must end in
	// EOF (not a reset), and a restarted server must resume the lineage so
	// the remaining stream continues the solo timeline exactly.
	eStream := tenantStream("wire-e", 0, 96)
	eFrames := make(map[uint64][]moe.Observation)
	for f := 0; f < 6; f++ {
		eFrames[uint64(2000+f)] = eStream[f*8 : (f+1)*8]
	}
	eGot := pipeline(t, c, eFrames, func(uint64) string { return "wire-e" })
	for seq, resp := range eGot {
		if resp.Err != nil {
			t.Fatalf("wire-e seq %d refused before drain: %v", seq, resp.Err)
		}
	}
	rep, err := srv.Drain(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("drain not clean: %+v", rep)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("session still delivering frames after drain")
	}

	srv2, ts2 := newTestServer(t, cfg)
	defer srv2.Drain(5 * time.Second)
	c2 := dialStream(t, ts2.URL)
	rest := make(map[uint64][]moe.Observation)
	for f := 6; f < 12; f++ {
		rest[uint64(3000+f)] = eStream[f*8 : (f+1)*8]
	}
	restGot := pipeline(t, c2, rest, func(uint64) string { return "wire-e" })
	wantE := soloThreads(t, eStream)
	var eThreads []int
	for f := 6; f < 12; f++ {
		resp := restGot[uint64(3000+f)]
		if resp.Err != nil {
			t.Fatalf("wire-e frame %d after restart refused: %v", f, resp.Err)
		}
		eThreads = append(eThreads, resp.Threads...)
	}
	for i, want := range wantE[48:] {
		if eThreads[i] != want {
			t.Fatalf("wire-e post-restart decision %d: got %d, want %d (resume broke the timeline)", i, eThreads[i], want)
		}
	}
	if final := restGot[3011].Decisions; final != 96 {
		t.Fatalf("wire-e decisions after restart = %d, want 96 (journal lost acked decisions)", final)
	}
}

// TestStreamCoalesces pins that pipelined same-tenant frames actually merge:
// a slow first core build piles the rest of the burst into the coalescer,
// so the second group must carry more than one frame — and the merged
// batches still answer byte-identically with per-frame prefix counts.
func TestStreamCoalesces(t *testing.T) {
	slowOnce := sync.Once{}
	srv, ts := newTestServer(t, Config{
		MaxInflight: 1024,
		PolicyBuild: func(id string) (moe.Policy, error) {
			slowOnce.Do(func() { time.Sleep(100 * time.Millisecond) })
			return DefaultPolicyBuild(id)
		},
	})
	c := dialStream(t, ts.URL)
	const nFrames, perFrame = 32, 4
	stream := tenantStream("coal", 0, nFrames*perFrame)
	frames := make(map[uint64][]moe.Observation, nFrames)
	for f := 0; f < nFrames; f++ {
		frames[uint64(f)] = stream[f*perFrame : (f+1)*perFrame]
	}
	got := pipeline(t, c, frames, func(uint64) string { return "coal" })
	want := soloThreads(t, stream)
	var threads []int
	for f := 0; f < nFrames; f++ {
		resp := got[uint64(f)]
		if resp.Err != nil {
			t.Fatalf("frame %d refused: %v", f, resp.Err)
		}
		if wantCount := int64((f + 1) * perFrame); resp.Decisions != wantCount {
			t.Fatalf("frame %d decisions %d, want prefix count %d", f, resp.Decisions, wantCount)
		}
		threads = append(threads, resp.Threads...)
	}
	for i := range want {
		if threads[i] != want[i] {
			t.Fatalf("decision %d: coalesced %d, solo %d", i, threads[i], want[i])
		}
	}
	groups := srv.stream.coalesced.Count()
	if groups == 0 || groups >= nFrames {
		t.Fatalf("coalesced histogram saw %d groups for %d frames; want at least one merged group", groups, nFrames)
	}
	if sum := srv.stream.coalesced.Sum(); sum != nFrames {
		t.Fatalf("coalesced frame sum %v, want %d", sum, nFrames)
	}
}

// TestStreamEnvelope pins per-frame refusals: the stream passes the exact
// admission envelope the HTTP path does, answering violations with typed
// error frames that do not end the session, and the idempotency window
// holds across frames, within a burst, and across transports.
func TestStreamEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 64})
	c := dialStream(t, ts.URL)
	obs := tenantStream("env", 0, 4)

	refusals := []struct {
		name, tenant, code string
		obs                []moe.Observation
	}{
		{"bad tenant id", "no/slashes", "bad-tenant", obs},
		{"empty batch", "env", "bad-request", nil},
		{"oversized batch", "env", "bad-request", tenantStream("env", 0, DefMaxBatch+1)},
	}
	for i, tc := range refusals {
		resp, err := c.Do(uint64(10+i), 0, tc.tenant, "", tc.obs)
		if err != nil {
			t.Fatalf("%s: session error: %v", tc.name, err)
		}
		se, ok := resp.Err.(*moeclient.ServerError)
		if !ok {
			t.Fatalf("%s: got %+v, want typed refusal", tc.name, resp)
		}
		if se.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, se.Code, tc.code)
		}
		if resp.Seq != uint64(10+i) {
			t.Fatalf("%s: refusal for seq %d, want %d", tc.name, resp.Seq, 10+i)
		}
	}

	// Oversized request ID.
	resp, err := c.Do(20, 0, "env", strings.Repeat("x", maxRequestID+1), obs)
	if err != nil {
		t.Fatal(err)
	}
	if se, ok := resp.Err.(*moeclient.ServerError); !ok || se.Code != "bad-request" {
		t.Fatalf("oversized request id: %+v", resp)
	}

	// Idempotency: first decide under r1 commits; an in-burst duplicate and
	// a later retry both answer from the window without advancing the
	// runtime.
	if err := c.Send(30, 0, "env", "r1", obs); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(31, 0, "env", "r1", obs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	first, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	twin, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 30 || twin.Seq != 31 {
		t.Fatalf("responses out of arrival order: %d then %d", first.Seq, twin.Seq)
	}
	if first.Err != nil || first.Deduped {
		t.Fatalf("original: %+v", first)
	}
	if twin.Err != nil || !twin.Deduped {
		t.Fatalf("in-burst duplicate not answered from the window: %+v", twin)
	}
	retry, err := c.Do(32, 0, "env", "r1", obs)
	if err != nil {
		t.Fatal(err)
	}
	if retry.Err != nil || !retry.Deduped || retry.Decisions != first.Decisions {
		t.Fatalf("cross-frame retry: %+v, want dedup of %+v", retry, first)
	}
	for i, th := range first.Threads {
		if twin.Threads[i] != th || retry.Threads[i] != th {
			t.Fatalf("dedup threads diverge at %d: %d/%d/%d", i, th, twin.Threads[i], retry.Threads[i])
		}
	}
	// The runtime must not have advanced for the duplicates.
	fresh, err := c.Do(33, 0, "env", "", tenantStream("env", 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Err != nil || fresh.Decisions != first.Decisions+4 {
		t.Fatalf("runtime advanced for deduped frames: %+v after %+v", fresh, first)
	}
}

// TestStreamRateLimit: the token bucket refuses stream frames exactly like
// HTTP requests — typed, with a retry hint, session intact.
func TestStreamRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Rate: 1, Burst: 2, MaxInflight: 64})
	c := dialStream(t, ts.URL)
	obs := tenantStream("rl", 0, 2)
	var refused *moeclient.ServerError
	for i := 0; i < 5; i++ {
		resp, err := c.Do(uint64(i), 0, "rl", "", obs)
		if err != nil {
			t.Fatalf("frame %d: session error %v", i, err)
		}
		if se, ok := resp.Err.(*moeclient.ServerError); ok && se.Code == "rate" {
			refused = se
			break
		}
	}
	if refused == nil {
		t.Fatal("5 instant frames through a 1/s bucket never hit the rate gate")
	}
	if refused.RetryAfter <= 0 {
		t.Fatalf("rate refusal carries no retry hint: %+v", refused)
	}
	// The session survives; waiting out the hint serves again.
	time.Sleep(refused.RetryAfter + 100*time.Millisecond)
	resp, err := c.Do(99, 0, "rl", "", obs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != nil {
		t.Fatalf("frame after the hinted wait still refused: %v", resp.Err)
	}
}

// TestStreamTCPAndDemotion covers the raw TCP listener: a wire client
// works end to end, a JSON client on the same port is demoted to the JSON
// ladder (typed, counted), a version-skewed hello is refused without
// demotion, and a malformed frame mid-stream gets a typed error before the
// session closes.
func TestStreamTCPAndDemotion(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxInflight: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeStream(ln)
	addr := ln.Addr().String()

	// Wire client end to end.
	c, err := moeclient.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obs := tenantStream("tcp", 0, 8)
	resp, err := c.Do(1, 0, "tcp", "", obs)
	if err != nil || resp.Err != nil {
		t.Fatalf("wire over TCP: %v / %+v", err, resp)
	}
	want := soloThreads(t, obs)
	for i := range want {
		if resp.Threads[i] != want[i] {
			t.Fatalf("TCP decision %d: %d, want %d", i, resp.Threads[i], want[i])
		}
	}

	// JSON client on the stream port: demoted, served, counted.
	jc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	if err := json.NewEncoder(jc).Encode(decideRequest{Tenant: "tcp-json", Observations: toWire(obs)}); err != nil {
		t.Fatal(err)
	}
	var jresp decideResponse
	if err := json.NewDecoder(bufio.NewReader(jc)).Decode(&jresp); err != nil {
		t.Fatalf("demoted JSON response: %v", err)
	}
	if len(jresp.Threads) != len(obs) {
		t.Fatalf("demoted session served %d threads, want %d", len(jresp.Threads), len(obs))
	}
	if n := srv.stream.demotions.Value(); n != 1 {
		t.Fatalf("demotions counter = %d, want 1", n)
	}

	// Version skew: a well-formed hello from the future is refused typed —
	// not demoted, not served.
	vc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	hello := []byte{6, 0, 0, 0, 0x01, 'M', 'O', 'E', 'W', 99} // version 99
	crc := crc32.Checksum(hello[4:], crc32.MakeTable(crc32.Castagnoli))
	hello = binary.LittleEndian.AppendUint32(hello, crc)
	if _, err := vc.Write(hello); err != nil {
		t.Fatal(err)
	}
	assertErrorFrame(t, vc, "unsupported-version")

	// Malformed frame mid-stream: typed bad-frame, then EOF.
	mc, err := moeclient.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if _, err := mc.Do(1, 0, "tcp", "", obs[:2]); err != nil {
		t.Fatal(err)
	}
	// Valid length prefix, garbage body: the CRC cannot match.
	junk := []byte{8, 0, 0, 0, 0x02, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9, 9}
	if err := sendRaw(mc, junk); err != nil {
		t.Fatal(err)
	}
	r, err := mc.Recv()
	if err != nil {
		t.Fatalf("expected a typed bad-frame before close, got transport error %v", err)
	}
	if se, ok := r.Err.(*moeclient.ServerError); !ok || se.Code != "bad-frame" {
		t.Fatalf("malformed frame answered %+v, want bad-frame", r)
	}
	if _, err := mc.Recv(); err == nil {
		t.Fatal("session survived a framing desync")
	}

	if n := srv.stream.demotions.Value(); n != 1 {
		t.Fatalf("demotions counter = %d after handshake refusals, want still 1", n)
	}
}

// sendRaw injects raw bytes under a wire client (hostile-peer harness).
func sendRaw(c *moeclient.Client, b []byte) error {
	return c.SendRaw(b)
}

func assertErrorFrame(t *testing.T, conn net.Conn, code string) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	cc, err := clientFromConn(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cc.Recv()
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	se, ok := r.Err.(*moeclient.ServerError)
	if !ok || se.Code != code {
		t.Fatalf("got %+v, want %s refusal", r, code)
	}
}

func clientFromConn(conn net.Conn) (*moeclient.Client, error) {
	return moeclient.FromConn(conn), nil
}

// TestStreamTelemetrySeries pins the serve_stream_* family names exposed
// on /metrics (the telemetry satellite's contract with dashboards).
func TestStreamTelemetrySeries(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 64})
	c := dialStream(t, ts.URL)
	if resp, err := c.Do(1, 0, "series", "", tenantStream("series", 0, 4)); err != nil || resp.Err != nil {
		t.Fatalf("decide: %v / %+v", err, resp)
	}
	var buf bytes.Buffer
	if err := srv.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		"serve_stream_sessions 1",
		`serve_stream_frames_total{dir="in"}`,
		`serve_stream_frames_total{dir="out"}`,
		`serve_stream_bytes_total{dir="in"}`,
		`serve_stream_bytes_total{dir="out"}`,
		"serve_stream_coalesced_batch_count 1",
		"serve_stream_demotions_total 0",
		"serve_stream_group_commit_fsyncs_total 0",
		"serve_stream_group_commit_fsyncs_saved_total 0",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}
	c.Close()
}

// TestNDJSONContentTypeParams: "application/x-ndjson; charset=utf-8" must
// route to the NDJSON path — an exact string match silently fed only the
// first line to the single-JSON path (regression for the media-type
// satellite).
func TestNDJSONContentTypeParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stream := tenantStream("ct", 0, 8)
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := 0; i < 2; i++ {
		if err := enc.Encode(decideRequest{Tenant: "ct", Observations: toWire(stream[i*4 : (i+1)*4])}); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", &body)
	req.Header.Set("Content-Type", "application/x-ndjson; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []decideResponse
	for dec.More() {
		var line decideResponse
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if len(lines) != 2 {
		t.Fatalf("charset-parameterized NDJSON served %d lines, want 2", len(lines))
	}
	if lines[1].Decisions != 8 {
		t.Fatalf("second line decisions = %d, want 8 (was it ever served?)", lines[1].Decisions)
	}
}

// TestNDJSONTooManyLines: the line cap must refuse the excess loudly. At
// the cap the stream serves clean; one line past it, every served line
// answers and the final line is a typed too-many-lines error (regression
// for the silent-truncation satellite).
func TestNDJSONTooManyLines(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4096 * 2})
	post := func(lines int) []json.RawMessage {
		t.Helper()
		var body bytes.Buffer
		enc := json.NewEncoder(&body)
		one := toWire(tenantStream("cap", 0, 1))
		for i := 0; i < lines; i++ {
			if err := enc.Encode(decideRequest{Tenant: "cap", Observations: one}); err != nil {
				t.Fatal(err)
			}
		}
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", &body)
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set("X-Deadline-Ms", "30000")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []json.RawMessage
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var line json.RawMessage
			if err := dec.Decode(&line); err != nil {
				t.Fatal(err)
			}
			out = append(out, line)
		}
		return out
	}
	const maxLines = 4096
	at := post(maxLines)
	if len(at) != maxLines {
		t.Fatalf("at the cap: %d lines back, want %d", len(at), maxLines)
	}
	var last errorResponse
	json.Unmarshal(at[len(at)-1], &last)
	if last.Code != "" {
		t.Fatalf("at the cap: spurious trailing error %+v", last)
	}
	over := post(maxLines + 1)
	if len(over) != maxLines+1 {
		t.Fatalf("past the cap: %d lines back, want %d served + 1 error", len(over), maxLines)
	}
	json.Unmarshal(over[len(over)-1], &last)
	if last.Code != "too-many-lines" {
		t.Fatalf("past the cap: final line %s, want too-many-lines", over[len(over)-1])
	}
}

// TestGroupCommitUnderServe: with sync + a commit window on, concurrent
// tenants share journal fsyncs (saved > 0) while every ack stays durable —
// a drain + restart recovers every acked decision.
func TestGroupCommitUnderServe(t *testing.T) {
	root := t.TempDir()
	cfg := Config{
		CheckpointRoot:    root,
		CheckpointSync:    true,
		GroupCommitWindow: 2 * time.Millisecond,
		MaxInflight:       1024,
	}
	srv, ts := newTestServer(t, cfg)
	c := dialStream(t, ts.URL)
	ids := []string{"gc-a", "gc-b", "gc-c"}
	frames := make(map[uint64][]moe.Observation)
	for ti, id := range ids {
		stream := tenantStream(id, 0, 32)
		for f := 0; f < 8; f++ {
			frames[uint64(f*len(ids)+ti)] = stream[f*4 : (f+1)*4]
		}
	}
	got := pipeline(t, c, frames, func(seq uint64) string { return ids[seq%uint64(len(ids))] })
	for seq, resp := range got {
		if resp.Err != nil {
			t.Fatalf("seq %d refused: %v", seq, resp.Err)
		}
	}
	fsyncs, saved := srv.gcommit.Stats()
	if fsyncs == 0 {
		t.Fatal("group committer issued no fsyncs under sync serving")
	}
	if saved == 0 {
		t.Fatalf("no fsyncs saved across %d coalesced frames (fsyncs=%d)", len(frames), fsyncs)
	}
	if srv.stream.gcSaved.Value() != saved {
		t.Fatalf("saved counter %d != committer stat %d", srv.stream.gcSaved.Value(), saved)
	}
	if rep, err := srv.Drain(5 * time.Second); err != nil || !rep.Clean() {
		t.Fatalf("drain: %v %+v", err, rep)
	}
	srv2, ts2 := newTestServer(t, cfg)
	defer srv2.Drain(5 * time.Second)
	for _, id := range ids {
		resp := mustDecide(t, ts2.URL, id, toWire(tenantStream(id, 32, 4)))
		if resp.Decisions != 36 {
			t.Fatalf("tenant %s resumed at %d decisions, want 36 (group commit lost acked appends)", id, resp.Decisions)
		}
	}
}
