package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"moe"
	"moe/internal/experiments"
	"moe/internal/features"
)

// The decision-throughput study: the same healthy steady-state observation
// stream served three ways — one Decide call per observation, DecideBatch
// at batch 64, and batch 64 against a sharded runtime from concurrent
// goroutines — reported as decisions/second. This is the committed evidence
// (BENCH_PR6.json) behind the batch fast path's headline: batching amortizes
// the lock, the snapshot republish and the ladder proofs without changing a
// single decision.

const (
	throughputMaxThreads = 32
	throughputBatchSize  = 64
	throughputShards     = 4

	// The timing discipline: every measurement is a short slice (~sliceNs)
	// and the modes take slices round-robin, so within any interference
	// phase of the host — which lasts seconds to minutes — every mode is
	// sampled many times. The per-mode minimum over all rounds is then a
	// PAIRED statistic: the minima come from the same quiet windows, which
	// keeps the speedup ratios honest even when absolute numbers wander.
	// (One long benchmark per mode, by contrast, can land different modes
	// in different phases and report a ratio no single moment exhibited.)
	sliceNs     = 4e6
	sliceRounds = 600
	// allocOps is the op count the allocation statistics are averaged over
	// (runtime.MemStats deltas; the counters are monotonic, so GC timing
	// cannot skew them). It doubles as the warm-up before timing.
	allocOps = 512
)

// throughputObservation mirrors the differential suite's steady golden
// stream: clean features, constant availability, monotone clock.
func throughputObservation(i int) moe.Observation {
	var f moe.Features
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((i*7+j*3)%11)
	}
	f[features.Processors] = throughputMaxThreads
	return moe.Observation{
		Time:           0.25 * float64(i),
		Features:       f,
		RegionStart:    i%4 == 0,
		Rate:           100,
		AvailableProcs: throughputMaxThreads,
	}
}

// throughputStream builds one reusable batch of steady observations.
func throughputStream(n int) []moe.Observation {
	obs := make([]moe.Observation, n)
	for i := range obs {
		obs[i] = throughputObservation(i)
	}
	return obs
}

// retimeStream rewrites the batch's timestamps to continue the monotone
// clock, so the same slice can be replayed forever without regressing time
// (a regressed timestamp is a repair, and repairs demote the fast path).
func retimeStream(obs []moe.Observation, step *int) {
	for j := range obs {
		obs[j].Time = 0.25 * float64(*step)
		*step++
	}
}

func newThroughputRuntime() (*moe.Runtime, error) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		return nil, err
	}
	return moe.NewRuntime(m, throughputMaxThreads)
}

// throughputMeasurement is one serving mode's result.
type throughputMeasurement struct {
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	NsPerDecision   float64 `json:"ns_per_decision"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	// FastFraction is the share of decisions served by the healthy-regime
	// fast path (0 for the single-shot mode, which never dispatches).
	FastFraction float64 `json:"fast_fraction"`
}

type throughputReport struct {
	Description string `json:"description"`
	CPUs        int    `json:"cpus"`
	BatchSize   int    `json:"batch_size"`
	Shards      int    `json:"shards"`
	// SingleShot is one Runtime.Decide call per observation.
	SingleShot throughputMeasurement `json:"single_shot"`
	// Batched is DecideBatchInto at BatchSize on one runtime.
	Batched throughputMeasurement `json:"batched"`
	// ShardedConcurrent is DecideBatchInto at BatchSize against a sharded
	// runtime from GOMAXPROCS goroutines.
	ShardedConcurrent     throughputMeasurement `json:"sharded_concurrent"`
	SpeedupBatchVsSingle  float64               `json:"speedup_batch_vs_single"`
	SpeedupShardsVsSingle float64               `json:"speedup_sharded_vs_single"`
	Notes                 []string              `json:"notes"`
}

// throughputProbe is one serving mode under measurement: an op that serves n
// batches of throughputBatchSize decisions, and the accessor the
// fast-fraction statistic is read from afterwards.
type throughputProbe struct {
	op       func(n int)
	fastFrac func() float64

	iters       int // ops per timing slice, calibrated to ~sliceNs
	bestNs      float64
	hasResult   bool
	allocsPerOp int64
	bytesPerOp  int64
}

// prepare measures the probe's allocation profile over allocOps ops (warming
// every path in the process) and calibrates the slice op count.
func (p *throughputProbe) prepare() {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	p.op(allocOps)
	runtime.ReadMemStats(&after)
	p.allocsPerOp = int64(after.Mallocs-before.Mallocs) / allocOps
	p.bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / allocOps

	p.iters = 1
	for {
		start := time.Now()
		p.op(p.iters)
		if el := time.Since(start).Nanoseconds(); float64(el) >= sliceNs || p.iters >= 1<<20 {
			return
		}
		p.iters *= 2
	}
}

// timeSlice runs one calibrated slice and keeps the fastest per-op time seen
// so far. Called round-robin across the modes; see the sliceNs comment for
// why the interleaving is the whole point.
func (p *throughputProbe) timeSlice() {
	start := time.Now()
	p.op(p.iters)
	ns := float64(time.Since(start).Nanoseconds()) / float64(p.iters)
	if !p.hasResult || ns < p.bestNs {
		p.bestNs = ns
		p.hasResult = true
	}
}

func (p *throughputProbe) measurement() throughputMeasurement {
	ns := p.bestNs / throughputBatchSize
	return throughputMeasurement{
		DecisionsPerSec: 1e9 / ns,
		NsPerDecision:   ns,
		AllocsPerOp:     p.allocsPerOp,
		BytesPerOp:      p.bytesPerOp,
		FastFraction:    p.fastFrac(),
	}
}

// singleShotProbe serves 64 decisions per op through one Decide call each.
func singleShotProbe() (*throughputProbe, error) {
	rt, err := newThroughputRuntime()
	if err != nil {
		return nil, err
	}
	obs := throughputStream(throughputBatchSize)
	step := 0
	return &throughputProbe{
		op: func(n int) {
			for i := 0; i < n; i++ {
				retimeStream(obs, &step)
				for j := range obs {
					rt.Decide(obs[j])
				}
			}
		},
		fastFrac: func() float64 { return 0 },
	}, nil
}

// batchedProbe serves 64 decisions per op through one DecideBatchInto call.
func batchedProbe() (*throughputProbe, error) {
	rt, err := newThroughputRuntime()
	if err != nil {
		return nil, err
	}
	obs := throughputStream(throughputBatchSize)
	dst := make([]int, 0, throughputBatchSize)
	step := 0
	return &throughputProbe{
		op: func(n int) {
			for i := 0; i < n; i++ {
				retimeStream(obs, &step)
				dst = rt.DecideBatchInto(dst[:0], obs)
			}
		},
		fastFrac: func() float64 {
			if d := rt.Decisions(); d > 0 {
				return float64(rt.BatchStats().FastDecisions) / float64(d)
			}
			return 0
		},
	}, nil
}

// shardedProbe serves 64 decisions per op against a sharded runtime from
// GOMAXPROCS concurrent goroutines (one worker per CPU, stable shard keys).
func shardedProbe() (*throughputProbe, error) {
	sharded, err := moe.NewShardedRuntime(throughputShards, throughputMaxThreads, func(int) (moe.Policy, error) {
		return moe.NewMixture(moe.CanonicalExperts())
	})
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	type shardWorker struct {
		key uint64
		obs []moe.Observation
		dst []int
	}
	ws := make([]*shardWorker, workers)
	for i := range ws {
		ws[i] = &shardWorker{
			key: uint64(i),
			obs: throughputStream(throughputBatchSize),
			dst: make([]int, 0, throughputBatchSize),
		}
	}
	// Workers draw timestamp blocks from one shared monotone counter: each
	// shard then sees a subsequence of an increasing sequence, so its clock
	// never regresses across rounds (a regressed timestamp is a repair, and
	// repairs demote the fast path).
	var nextStep atomic.Int64
	return &throughputProbe{
		op: func(n int) {
			var wg sync.WaitGroup
			for _, w := range ws {
				wg.Add(1)
				go func(w *shardWorker) {
					defer wg.Done()
					for i := 0; i < n; i += workers {
						base := nextStep.Add(throughputBatchSize) - throughputBatchSize
						for j := range w.obs {
							w.obs[j].Time = 0.25 * float64(base+int64(j))
						}
						w.dst = sharded.DecideBatchInto(w.key, w.dst[:0], w.obs)
					}
				}(w)
			}
			wg.Wait()
		},
		fastFrac: func() float64 {
			if d := sharded.Decisions(); d > 0 {
				return float64(sharded.BatchStats().FastDecisions) / float64(d)
			}
			return 0
		},
	}, nil
}

func runThroughput() (*throughputReport, error) {
	rep := &throughputReport{
		Description: "healthy steady-state decision stream on the canonical 4-expert mixture: decisions/sec single-shot Decide vs DecideBatch(64) vs sharded DecideBatch(64) from concurrent goroutines",
		CPUs:        runtime.GOMAXPROCS(0),
		BatchSize:   throughputBatchSize,
		Shards:      throughputShards,
	}
	single, err := singleShotProbe()
	if err != nil {
		return nil, err
	}
	batched, err := batchedProbe()
	if err != nil {
		return nil, err
	}
	sharded, err := shardedProbe()
	if err != nil {
		return nil, err
	}
	probes := []*throughputProbe{single, batched, sharded}
	for _, p := range probes {
		p.prepare()
	}
	for r := 0; r < sliceRounds; r++ {
		for _, p := range probes {
			p.timeSlice()
		}
	}
	rep.SingleShot = single.measurement()
	rep.Batched = batched.measurement()
	rep.ShardedConcurrent = sharded.measurement()
	rep.SpeedupBatchVsSingle = rep.Batched.DecisionsPerSec / rep.SingleShot.DecisionsPerSec
	rep.SpeedupShardsVsSingle = rep.ShardedConcurrent.DecisionsPerSec / rep.SingleShot.DecisionsPerSec
	rep.Notes = append(rep.Notes,
		"one op serves 64 decisions in every mode, so per-op times are directly comparable",
		"modes are timed in interleaved millisecond slices and reported as the per-mode minimum, so the speedup ratios pair minima from the same interference windows",
		"the batched and sharded modes run the healthy-regime fast path (fast_fraction ~1); single-shot Decide walks the full ladder per observation",
	)
	if rep.CPUs < 2 {
		rep.Notes = append(rep.Notes,
			"measured on a single-CPU host: sharded goroutines serialize, so parallel scaling is not observable here — the sharded row demonstrates contention overhead stays small; on multi-core hosts throughput scales with shards because each shard owns an independent lock and read-snapshot set")
	}
	return rep, nil
}

// throughputTable renders the report as a standard experiment table for
// `-experiment throughput`.
func throughputTable(rep *throughputReport) *experiments.Table {
	t := &experiments.Table{
		Title:   "Decision throughput — single-shot vs batched vs sharded",
		Columns: []string{"decisions/sec", "ns/decision", "fast fraction", "speedup vs single"},
		Notes:   rep.Notes,
	}
	t.AddRow("single-shot Decide", rep.SingleShot.DecisionsPerSec, rep.SingleShot.NsPerDecision, rep.SingleShot.FastFraction, 1)
	t.AddRow(fmt.Sprintf("DecideBatch(%d)", rep.BatchSize), rep.Batched.DecisionsPerSec, rep.Batched.NsPerDecision, rep.Batched.FastFraction, rep.SpeedupBatchVsSingle)
	t.AddRow(fmt.Sprintf("sharded(%d) batch", rep.Shards), rep.ShardedConcurrent.DecisionsPerSec, rep.ShardedConcurrent.NsPerDecision, rep.ShardedConcurrent.FastFraction, rep.SpeedupShardsVsSingle)
	return t
}

// writeThroughputJSON runs the study and writes the committed artifact
// (BENCH_PR6.json).
func writeThroughputJSON(path string) error {
	rep, err := runThroughput()
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: throughput single %.0f/s, batch %.0f/s (%.2fx), sharded %.0f/s (%.2fx), wrote %s\n",
		rep.SingleShot.DecisionsPerSec,
		rep.Batched.DecisionsPerSec, rep.SpeedupBatchVsSingle,
		rep.ShardedConcurrent.DecisionsPerSec, rep.SpeedupShardsVsSingle, path)
	return nil
}
