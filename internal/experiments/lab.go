package experiments

import (
	"context"
	"fmt"
	"sync"

	"moe/internal/core"
	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/parallel"
	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/training"
	"moe/internal/workload"
)

// PolicyName identifies a thread-selection policy under evaluation.
type PolicyName string

// The policies of §6.3 plus the analysis/ablation variants.
const (
	PolicyDefault  PolicyName = "default"
	PolicyOnline   PolicyName = "online"
	PolicyOffline  PolicyName = "offline"
	PolicyAnalytic PolicyName = "analytic"
	PolicyMixture  PolicyName = "mixture"
	// PolicyMixture2 and PolicyMixture8 vary the expert pool size (§3,
	// §8.4).
	PolicyMixture2 PolicyName = "mixture2"
	PolicyMixture8 PolicyName = "mixture8"
	// PolicyMonolithic runs the single aggregate model with the full
	// mixture machinery (§7.7 / Fig 14c).
	PolicyMonolithic PolicyName = "monolithic"
	// PolicyOracle uses the simulator's ground truth (headroom bound).
	PolicyOracle PolicyName = "oracle"
	// Ablation variants of the mixture's selector.
	PolicyMixtureAccuracyGate PolicyName = "mixture-accuracy-gate"
	PolicyMixtureRandomGate   PolicyName = "mixture-random-gate"
	PolicyMixtureNoPretrain   PolicyName = "mixture-no-pretrain"
)

// BaselinePolicies are the schemes of every headline figure, in the order
// the paper lists them.
var BaselinePolicies = []PolicyName{PolicyOnline, PolicyOffline, PolicyAnalytic, PolicyMixture}

// Lab owns the trained models and hands out policy instances. Expert sets
// respect the paper's leave-one-out deployment rule (§5.2.3): models used
// for a target are trained without that target's data.
//
// A Lab is safe for concurrent use: the model cache is built through
// per-target once-guards (so two goroutines asking for different targets
// build in parallel, while two asking for the same target share one
// build), and every NewPolicy call returns a fresh policy instance over
// the shared read-only models.
type Lab struct {
	// DS is the full training dataset (NAS programs, both platforms).
	DS *training.DataSet
	// Eval is the evaluation machine (Table 2).
	Eval sim.MachineConfig
	// Workers bounds how many scenario evaluations the lab's experiment
	// tables run concurrently: 0 uses GOMAXPROCS, 1 runs serially. Every
	// job derives its seed from the experiment spec rather than from
	// scheduling order, so tables are byte-identical for every setting.
	Workers int
	// Stepping selects the simulation engine for the lab's scenario
	// evaluations. NewLab/NewLabFromData choose the event-horizon engine
	// (observables agree with the fixed-dt reference within 1e-9; see
	// sim.SteppingEvent); set SteppingFixed to force the reference.
	Stepping sim.SteppingMode

	mu    sync.Mutex
	cache map[string]*modelEntry
	pool  *parallel.Pool
	poolW int
}

// targetModels are the per-excluded-target model builds, plus the fitted
// gating priors for each pool size. Everything here is immutable after the
// build completes and is shared by all policy instances for the target.
type targetModels struct {
	sub    *training.DataSet
	set2   expert.Set
	set4   expert.Set
	set8   expert.Set
	mono   *expert.Expert
	prior2 *training.GatingPrior
	prior4 *training.GatingPrior
	prior8 *training.GatingPrior
}

// modelEntry guards one target's build so concurrent requests for the same
// target wait on a single build instead of serializing the whole cache.
type modelEntry struct {
	once sync.Once
	m    *targetModels
	err  error
}

// NewLab generates training data and returns a ready lab. The zero Config
// value selects the paper's training setup. The lab inherits the config's
// Workers setting for its experiment fan-outs.
func NewLab(cfg training.Config) (*Lab, error) {
	ds, err := training.Generate(cfg)
	if err != nil {
		return nil, err
	}
	l := NewLabFromData(ds)
	l.Workers = cfg.Workers
	return l, nil
}

// NewLabFromData wraps an existing dataset (used by tests that share one
// generation across many experiments).
func NewLabFromData(ds *training.DataSet) *Lab {
	return &Lab{DS: ds, Eval: sim.Eval32(), Stepping: sim.SteppingEvent, cache: make(map[string]*modelEntry)}
}

// jobs returns the worker pool matching the current Workers setting.
func (l *Lab) jobs() *parallel.Pool {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := parallel.Workers(l.Workers)
	if l.pool == nil || l.poolW != w {
		l.pool = parallel.NewPool(w)
		l.poolW = w
	}
	return l.pool
}

// grid evaluates fn for every index in [0, n) on the lab's pool and
// returns the results in index order, so table reductions accumulate in
// exactly the order the serial loops did.
func grid[T any](l *Lab, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(context.Background(), l.jobs(), n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// models returns (building and caching on first use) the model set trained
// without the named target program.
func (l *Lab) models(target string) (*targetModels, error) {
	l.mu.Lock()
	e, ok := l.cache[target]
	if !ok {
		e = &modelEntry{}
		l.cache[target] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.m, e.err = l.buildModels(target) })
	return e.m, e.err
}

// buildModels performs the expensive leave-one-out fits. It runs outside
// the lab mutex (the per-entry once provides the exclusion), so different
// targets build concurrently.
func (l *Lab) buildModels(target string) (*targetModels, error) {
	sub := l.DS.ExcludeProgram(target)
	set2, err := training.BuildExperts2(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts2 without %s: %w", target, err)
	}
	set4, err := training.BuildExperts4(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts4 without %s: %w", target, err)
	}
	set8, err := training.BuildExperts8(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts8 without %s: %w", target, err)
	}
	mono, err := training.BuildMonolithic(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: monolithic without %s: %w", target, err)
	}
	prior2, err := training.FitGatingPrior(sub, set2, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: gating prior (2) without %s: %w", target, err)
	}
	prior4, err := training.FitGatingPrior(sub, set4, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: gating prior (4) without %s: %w", target, err)
	}
	prior8, err := training.FitGatingPrior(sub, set8, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: gating prior (8) without %s: %w", target, err)
	}
	return &targetModels{
		sub: sub, set2: set2, set4: set4, set8: set8, mono: mono,
		prior2: prior2, prior4: prior4, prior8: prior8,
	}, nil
}

// Experts4 exposes the four-expert pool trained without the target (for
// analysis experiments that inspect experts directly).
func (l *Lab) Experts4(target string) (expert.Set, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	return m.set4, nil
}

// TrainingSubset exposes the leave-one-out dataset for a target.
func (l *Lab) TrainingSubset(target string) (*training.DataSet, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	return m.sub, nil
}

// NewPolicy builds a fresh policy instance of the named kind for the given
// target program. Policies are stateful; never share one across runs.
func (l *Lab) NewPolicy(name PolicyName, target string, seed uint64) (sim.Policy, error) {
	switch name {
	case PolicyDefault:
		return policy.NewDefault(), nil
	case PolicyOnline:
		return policy.NewOnline(), nil
	case PolicyAnalytic:
		return policy.NewAnalytic(policy.AnalyticOptions{Seed: seed}), nil
	case PolicyOracle:
		return sim.OraclePolicy{}, nil
	}

	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	switch name {
	case PolicyOffline:
		return policy.NewOffline(m.mono.Threads, m.mono.MaxThreads), nil
	case PolicyMonolithic:
		return core.NewMixture(expert.Set{m.mono}, core.Options{})
	case PolicyMixture:
		return training.NewMixtureFromPrior(m.prior4, m.set4)
	case PolicyMixture2:
		return training.NewMixtureFromPrior(m.prior2, m.set2)
	case PolicyMixture8:
		return training.NewMixtureFromPrior(m.prior8, m.set8)
	case PolicyMixtureAccuracyGate:
		return core.NewMixture(m.set4, core.Options{Selector: core.NewAccuracySelector(len(m.set4), 0)})
	case PolicyMixtureRandomGate:
		return core.NewMixture(m.set4, core.Options{Selector: core.NewRandomSelector(len(m.set4), seed)})
	case PolicyMixtureNoPretrain:
		return core.NewMixture(m.set4, core.Options{})
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// NewEvolvingPolicy builds the named mixture policy with the online
// expert lifecycle enabled: the trained pool is the founding generation,
// and births/retirements run from there. Only mixture policies with a
// resizable selector can evolve.
func (l *Lab) NewEvolvingPolicy(name PolicyName, target string, seed uint64, cfg evolve.Config) (sim.Policy, error) {
	cfg.Enabled = true
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	switch name {
	case PolicyMixture:
		return training.NewMixtureFromPriorOpts(m.prior4, m.set4, core.Options{Evolution: cfg})
	case PolicyMixture2:
		return training.NewMixtureFromPriorOpts(m.prior2, m.set2, core.Options{Evolution: cfg})
	case PolicyMixture8:
		return training.NewMixtureFromPriorOpts(m.prior8, m.set8, core.Options{Evolution: cfg})
	case PolicyMixtureNoPretrain:
		return core.NewMixture(m.set4, core.Options{Evolution: cfg})
	default:
		return nil, fmt.Errorf("experiments: policy %q cannot evolve (mixture policies only)", name)
	}
}

// SingleExpertPolicy wraps one expert from the four-expert pool as a
// standalone policy (the individual bars of Fig 15c).
func (l *Lab) SingleExpertPolicy(target string, idx int) (sim.Policy, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(m.set4) {
		return nil, fmt.Errorf("experiments: expert index %d out of range", idx)
	}
	return core.NewMixture(expert.Set{m.set4[idx]}, core.Options{})
}

// SubsetMixturePolicy builds a mixture over the first k experts of the
// four-expert pool (the "adding experts" sweep of Fig 15c).
func (l *Lab) SubsetMixturePolicy(target string, k int) (sim.Policy, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > len(m.set4) {
		return nil, fmt.Errorf("experiments: subset size %d out of range", k)
	}
	return training.NewMixturePolicy(m.sub, m.set4[:k])
}

// EvalTargets returns the benchmark programs evaluated in the paper's
// figures: every catalog program (NAS + SpecOMP + Parsec, §6.2).
func EvalTargets() []string {
	progs := workload.Catalog()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}
	return names
}
