GO ?= go

.PHONY: build test race vet bench bench-smoke serve-smoke replica-smoke evolve-smoke stream-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/... .

vet:
	$(GO) vet ./...

# bench regenerates the committed perf baselines: the engine comparison
# (BENCH_PR5.json, min-of-3, two-point step-loop derivation) and the decision
# throughput study (BENCH_PR6.json, single-shot Decide vs DecideBatch vs
# sharded batch, interleaved-slice paired minima). Commit the results when
# the engine or the decision hot path changes on purpose.
bench:
	$(GO) run ./cmd/moebench -bench-json BENCH_PR5.json
	$(GO) run ./cmd/moebench -throughput-json BENCH_PR6.json
	$(GO) run ./cmd/moebench -serve-json BENCH_PR7.json
	$(GO) run ./cmd/moebench -replica-json BENCH_PR8.json
	$(GO) run ./cmd/moebench -evolve-json BENCH_PR9.json
	$(GO) run ./cmd/moebench -stream-json BENCH_PR10.json

# serve-smoke drives the real moed binary end to end: JSON + NDJSON
# decisions, chaos-tenant quarantine with a healthy bystander, metrics
# exposition, SIGTERM graceful drain (exit 0 inside the window), and a
# restart that resumes tenant decision counters from the drained
# checkpoints.
serve-smoke:
	bash scripts/serve_smoke.sh

# replica-smoke runs the two-process hot-standby failover against the real
# moed binary: primary replicating to a standby, identified client traffic,
# SIGKILL of the primary, `moed -promote`, exact recovered counters, a
# deduplicated retry, and fencing of the restarted stale primary.
replica-smoke:
	bash scripts/replica_smoke.sh

# stream-smoke drives the wire streaming transport across two real moed
# processes: 10k decisions over 8 pipelined sessions with checkpoint-sync
# and journal group commit on, a SIGTERM that must drain clean (exit 0),
# and a restart that must resume every tenant's decision counter exactly.
stream-smoke:
	bash scripts/stream_smoke.sh

# evolve-smoke exercises the full expert lifecycle (birth, probation,
# admission, retirement, replay determinism, frozen-pool byte-identity)
# plus the drifting-machine study itself, which hard-fails unless the
# living pool beats the frozen pool on hmean speedup after drift.
evolve-smoke:
	$(GO) test ./internal/core/ -run 'TestEvolution|TestGoldenTrace|TestHealthiest|TestRestore' -count=1
	$(GO) test . -run 'TestRuntimeRestartEvolvingPool|TestRuntimeResumePoolMismatchTyped' -count=1
	$(GO) run ./cmd/moebench -evolve-json /tmp/evolve-smoke.json

# bench-smoke is the CI guard: cheap fixed-iteration runs of the sim
# stepping-loop, batch decision, and wire codec microbenchmarks that fail
# if any steady-state loop ever allocates again. Timing is not asserted (CI
# machines are too noisy); the allocs/op == 0 invariant is.
bench-smoke:
	$(GO) test ./internal/sim -run=NONE -bench 'StepLoop' -benchmem -benchtime=100x -count=2 | tee bench-smoke.txt
	$(GO) test . -run=NONE -bench 'DecideBatchSteady' -benchmem -benchtime=100x -count=2 | tee -a bench-smoke.txt
	$(GO) test ./internal/wire -run=NONE -bench 'WireRoundTrip' -benchmem -benchtime=100x -count=2 | tee -a bench-smoke.txt
	@if grep -E '[1-9][0-9]* allocs/op' bench-smoke.txt; then \
		echo 'bench-smoke: a steady-state hot loop allocates'; exit 1; \
	fi
	@grep -c ' 0 allocs/op' bench-smoke.txt > /dev/null
